// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md's experiment
// index) plus microbenchmarks for the simulator's hot paths. The
// expensive five-trace comparison is computed once per process and
// cached in the shared eval.Env, so per-iteration work measures the
// report-generation path the way cmd/experiments exercises it.
package ecavs_test

import (
	"reflect"
	"sync"
	"testing"

	"ecavs"
	"ecavs/internal/abr"
	"ecavs/internal/campaign"
	"ecavs/internal/core"
	"ecavs/internal/dash"
	"ecavs/internal/eval"
	"ecavs/internal/netsim"
	"ecavs/internal/player"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
	"ecavs/internal/trace"
	"ecavs/internal/vibration"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *eval.Env
)

// env returns the shared experiment environment with the comparison
// pre-computed, so artifact benchmarks measure report generation.
func env(b *testing.B) *eval.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = eval.NewEnv()
		if _, err := benchEnv.Comparison(); err != nil {
			b.Fatalf("prime comparison: %v", err)
		}
	})
	return benchEnv
}

// benchExperiment runs one registry experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := env(b)
	ex, err := eval.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := ex.Run(e)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1aEnergyVsSignal(b *testing.B)     { benchExperiment(b, "fig1a") }
func BenchmarkFig1bQoEEnergyVsBitrate(b *testing.B) { benchExperiment(b, "fig1b") }
func BenchmarkFig2aSpatialTemporal(b *testing.B)    { benchExperiment(b, "fig2a") }
func BenchmarkFig2bQualityCurveFit(b *testing.B)    { benchExperiment(b, "fig2b") }
func BenchmarkFig2cImpairmentSurface(b *testing.B)  { benchExperiment(b, "fig2c") }
func BenchmarkTable2Ladder(b *testing.B)            { benchExperiment(b, "tab2") }
func BenchmarkTable3Coefficients(b *testing.B)      { benchExperiment(b, "tab3") }
func BenchmarkTable5Traces(b *testing.B)            { benchExperiment(b, "tab5") }
func BenchmarkTable6PowerValidation(b *testing.B)   { benchExperiment(b, "tab6") }
func BenchmarkFig5aEnergyComparison(b *testing.B)   { benchExperiment(b, "fig5a") }
func BenchmarkFig5bEnergySaving(b *testing.B)       { benchExperiment(b, "fig5b") }
func BenchmarkFig5cBaseExtra(b *testing.B)          { benchExperiment(b, "fig5c") }
func BenchmarkFig6aQoEComparison(b *testing.B)      { benchExperiment(b, "fig6a") }
func BenchmarkFig6bAverageQoE(b *testing.B)         { benchExperiment(b, "fig6b") }
func BenchmarkFig6cQoEDegradation(b *testing.B)     { benchExperiment(b, "fig6c") }
func BenchmarkFig7SavingRatio(b *testing.B)         { benchExperiment(b, "fig7") }

// Ablation benchmarks (design choices called out in DESIGN.md).

func BenchmarkAblationAlphaSweep(b *testing.B)      { benchExperiment(b, "abl-alpha") }
func BenchmarkAblationNoContext(b *testing.B)       { benchExperiment(b, "abl-context") }
func BenchmarkAblationNoGradualSwitch(b *testing.B) { benchExperiment(b, "abl-gradual") }
func BenchmarkAblationEstimators(b *testing.B)      { benchExperiment(b, "abl-estimator") }
func BenchmarkAblationVibrationWindow(b *testing.B) { benchExperiment(b, "abl-window") }
func BenchmarkAblationTailEnergy(b *testing.B)      { benchExperiment(b, "abl-tail") }
func BenchmarkAblationAbandonment(b *testing.B)     { benchExperiment(b, "abl-abandon") }
func BenchmarkAblationSegmentDuration(b *testing.B) { benchExperiment(b, "abl-segdur") }
func BenchmarkExtendedBaselines(b *testing.B)       { benchExperiment(b, "ext-baselines") }
func BenchmarkExtendedLearned(b *testing.B)         { benchExperiment(b, "ext-learned") }
func BenchmarkExtendedBrightness(b *testing.B)      { benchExperiment(b, "ext-brightness") }
func BenchmarkExtendedFairness(b *testing.B)        { benchExperiment(b, "ext-fairness") }
func BenchmarkExtendedRobustness(b *testing.B)      { benchExperiment(b, "ext-robustness") }

// BenchmarkComparisonCold measures the full five-trace, five-algorithm
// evaluation from a cold environment — the parallel engine's headline
// workload. Each iteration builds a fresh Env so nothing is cached;
// on a multi-core machine the trace×algorithm sessions fan out over
// the worker pool.
func BenchmarkComparisonCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := eval.NewEnv()
		c, err := e.Comparison()
		if err != nil {
			b.Fatal(err)
		}
		if len(c.Results) == 0 {
			b.Fatal("empty comparison")
		}
	}
}

// End-to-end session benchmarks: one full trace replay per iteration.

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	traces, err := ecavs.GenerateTableVTraces()
	if err != nil {
		b.Fatal(err)
	}
	return traces[0]
}

func BenchmarkSessionYoutube(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ecavs.Stream(tr, ecavs.NewYoutube()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionOnline(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg, err := ecavs.NewOnline(ecavs.DefaultAlpha)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ecavs.Stream(tr, alg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalPlanner(b *testing.B) {
	tr := benchTrace(b)
	obj, err := core.NewObjective(core.DefaultAlpha, power.EvalModel(), qoe.Default())
	if err != nil {
		b.Fatal(err)
	}
	man, err := sim.ManifestForTrace(tr, dash.EvalLadder())
	if err != nil {
		b.Fatal(err)
	}
	tasks, err := core.ObserveTasks(tr, man, player.DefaultBufferThresholdSec, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanOptimal(obj, dash.EvalLadder(), tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionAllocs pins the allocation-free hot path: one
// metrics-only trace replay per iteration with every derived input
// (manifest, algorithm state) prebuilt where the campaign runner would
// prebuild it. The allocs/op figure is the tracked budget — it is what
// keeps a million-session campaign out of the garbage collector.
func BenchmarkSessionAllocs(b *testing.B) {
	tr := benchTrace(b)
	man, err := sim.ManifestForTrace(tr, dash.EvalLadder())
	if err != nil {
		b.Fatal(err)
	}
	pm, qm := power.EvalModel(), qoe.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.TraceSession{
			Trace:         tr,
			SessionParams: sim.SessionParams{MetricsOnly: true},
			Manifest:      man,
			Algorithm:     abr.NewFESTIVE(),
			Power:         pm,
			QoE:           qm,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if m.TotalJ() <= 0 {
			b.Fatal("degenerate session")
		}
	}
}

// sessionAllocBudget is the tracked allocation budget for one
// metrics-only session (see BenchmarkSessionAllocs). The telemetry
// layer must not move it: with no recorder attached, the hot path pays
// exactly one nil comparison per segment.
const sessionAllocBudget = 18

// TestSessionAllocsTelemetryDisabled pins the zero-overhead contract
// from the observability layer: a metrics-only session with a nil
// decision recorder stays inside the allocation budget, and attaching
// a recorder leaves the session's aggregate metrics bit-identical.
func TestSessionAllocsTelemetryDisabled(t *testing.T) {
	tr := benchTrace2(t)
	man, err := sim.ManifestForTrace(tr, dash.EvalLadder())
	if err != nil {
		t.Fatal(err)
	}
	pm, qm := power.EvalModel(), qoe.Default()
	session := func(rec *sim.DecisionRecorder) *sim.Metrics {
		m, err := sim.TraceSession{
			Trace:         tr,
			SessionParams: sim.SessionParams{MetricsOnly: true, Recorder: rec},
			Manifest:      man,
			Algorithm:     abr.NewFESTIVE(),
			Power:         pm,
			QoE:           qm,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	allocs := testing.AllocsPerRun(10, func() { session(nil) })
	if allocs > sessionAllocBudget {
		t.Errorf("disabled-telemetry session allocates %.1f/run, budget %d", allocs, sessionAllocBudget)
	}

	rec, err := ecavs.NewDecisionRecorder(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, traced := session(nil), session(rec)
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("decision recorder perturbed metrics:\nplain  = %+v\ntraced = %+v", plain, traced)
	}
	if rec.Seen() == 0 {
		t.Error("recorder saw no decisions — trace path not exercised")
	}
}

// benchTrace2 is benchTrace for tests (testing.TB would also do, but
// the benchmark helpers predate the telemetry pin and take *testing.B).
func benchTrace2(t *testing.T) *trace.Trace {
	t.Helper()
	traces, err := ecavs.GenerateTableVTraces()
	if err != nil {
		t.Fatal(err)
	}
	return traces[0]
}

// BenchmarkCampaign10k runs a full 10000-session Monte-Carlo campaign
// per iteration (mixed algorithms, abandonment and vibration draws)
// and reports throughput as sessions/sec. The traces are shorter than
// the Table V commutes so the benchmark finishes in seconds; per-trace
// cost scales linearly with length.
func BenchmarkCampaign10k(b *testing.B) {
	rate := power.EvalModel().NominalThroughputMBps
	specs := []trace.Spec{
		{ID: 1, Name: "bench-bus", LengthSec: 180, DataSizeMB: 59, TargetVibration: 6.8,
			SignalMeanDBm: -107, SignalVolatilityDB: 3, SignalSwingDB: 5,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 201},
		{ID: 2, Name: "bench-train", LengthSec: 240, DataSizeMB: 80, TargetVibration: 2.5,
			SignalMeanDBm: -94, SignalVolatilityDB: 1.5, SignalSwingDB: 2,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 202},
	}
	traces := make([]*trace.Trace, 0, len(specs))
	for _, s := range specs {
		tr, err := trace.Generate(s, rate)
		if err != nil {
			b.Fatal(err)
		}
		traces = append(traces, tr)
	}
	cfg := campaign.Config{
		Traces:          traces,
		Sessions:        10_000,
		Seed:            1,
		AbandonProb:     0.25,
		VibrationJitter: 0.3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Algorithms) == 0 {
			b.Fatal("empty campaign result")
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(cfg.Sessions)*float64(b.N)/sec, "sessions/sec")
	}
}

// Microbenchmarks for the hot paths.

func BenchmarkOnlineDecision(b *testing.B) {
	obj, err := core.NewObjective(core.DefaultAlpha, power.EvalModel(), qoe.Default())
	if err != nil {
		b.Fatal(err)
	}
	alg := core.NewOnline(obj)
	alg.ObserveDownload(15)
	ladder := dash.EvalLadder()
	sizes := make([]float64, len(ladder))
	for i, r := range ladder {
		sizes[i] = r.BitrateMbps / 8 * 2
	}
	ctx := abr.Context{
		SegmentIndex:       10,
		Ladder:             ladder,
		SegmentSizesMB:     sizes,
		SegmentDurationSec: 2,
		PrevRung:           7,
		BufferSec:          25,
		BufferThresholdSec: 30,
		SignalDBm:          -105,
		VibrationLevel:     6,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.ChooseRung(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelAdvance(b *testing.B) {
	pm := power.EvalModel()
	ch, err := netsim.NewChannel(netsim.VehicleSignal, netsim.FadingConfig{}, pm.NominalThroughputMBps, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Advance(0.1)
		_ = ch.ThroughputMBps()
	}
}

func BenchmarkVibrationLevel(b *testing.B) {
	gen, err := vibration.NewGenerator(vibration.DefaultSampleRateHz, 3)
	if err != nil {
		b.Fatal(err)
	}
	samples := gen.Generate(vibration.Bus, 0, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vibration.Level(samples) <= 0 {
			b.Fatal("degenerate level")
		}
	}
}

func BenchmarkHarmonicMeanEstimator(b *testing.B) {
	e := netsim.NewHarmonicMeanEstimator(20)
	for i := 0; i < 20; i++ {
		e.Push(float64(i%7) + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Push(float64(i%9) + 1)
		if _, ok := e.Estimate(); !ok {
			b.Fatal("no estimate")
		}
	}
}

func BenchmarkPowerMonitor(b *testing.B) {
	mo := power.NewMonitor(power.MonitorConfig{Seed: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mo.Observe(2.5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkManifestGeneration(b *testing.B) {
	video, err := dash.VideoByTitle("Battle")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dash.NewManifest(video, dash.EvalLadder(), dash.ManifestConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	pm := power.EvalModel()
	spec := trace.TableVSpecs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(spec, pm.NominalThroughputMBps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSegmentQoE(b *testing.B) {
	m := qoe.Default()
	seg := qoe.Segment{BitrateMbps: 3.0, PrevBitrateMbps: 1.5, Vibration: 6, RebufferSec: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.SegmentQoE(seg) <= 0 {
			b.Fatal("degenerate QoE")
		}
	}
}

func BenchmarkSegmentEnergy(b *testing.B) {
	m := power.EvalModel()
	task := power.SegmentTask{BitrateMbps: 3.0, DurationSec: 2, SignalDBm: -105, BufferSec: 25}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.SegmentEnergy(task).TotalJ() <= 0 {
			b.Fatal("degenerate energy")
		}
	}
}
