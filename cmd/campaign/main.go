// Command campaign runs a Monte-Carlo fleet of streaming sessions over
// the Table V traces and prints per-algorithm aggregate statistics.
//
// Usage:
//
//	campaign                          # 1000 sessions, defaults
//	campaign -sessions 100000 -seed 7 -abandon 0.25 -vib-jitter 0.3
//	campaign -json                    # machine-readable result on stdout
//	campaign -sessions 5000000 -metrics-addr :9090 -progress
//
// -metrics-addr serves live telemetry while the campaign runs:
// /metrics (Prometheus text: sessions completed, sessions/sec, ETA,
// per-algorithm QoE and energy running means), /metrics.json, and the
// /debug/pprof profiling endpoints. -progress prints a one-line
// status to stderr every second.
//
// Results are deterministic for a fixed (-seed, -shards) pair; -shards
// defaults to GOMAXPROCS, so pin it when comparing runs across
// machines. Telemetry never perturbs results; the only
// non-deterministic outputs are the wall_sec / sessions_per_sec
// timing fields in -json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ecavs/internal/campaign"
	"ecavs/internal/netsim"
	"ecavs/internal/power"
	"ecavs/internal/telemetry"
	"ecavs/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	sessions := fs.Int("sessions", 1000, "total session count across all algorithms")
	seed := fs.Int64("seed", 1, "campaign seed")
	shards := fs.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
	abandon := fs.Float64("abandon", 0.25, "per-session early-quit probability")
	vibJitter := fs.Float64("vib-jitter", 0.3, "uniform relative jitter on sensed vibration, in [0,1)")
	outageProb := fs.Float64("outage", 0, "per-session probability of a seeded link-outage process")
	outageUp := fs.Float64("outage-up", 0, "mean seconds between outages (0 = default)")
	outageDown := fs.Float64("outage-down", 0, "mean outage length in seconds (0 = default)")
	asJSON := fs.Bool("json", false, "emit the result as JSON instead of a table")
	metricsAddr := fs.String("metrics-addr", "", "serve live /metrics, /metrics.json, and /debug/pprof on this address while running")
	progress := fs.Bool("progress", false, "print live progress to stderr every second")
	if err := fs.Parse(args); err != nil {
		return err
	}

	traces, err := trace.GenerateTableV(power.EvalModel().NominalThroughputMBps)
	if err != nil {
		return err
	}
	outage := netsim.DefaultOutage()
	if *outageUp > 0 {
		outage.MeanUpSec = *outageUp
	}
	if *outageDown > 0 {
		outage.MeanDownSec = *outageDown
	}
	cfg := campaign.Config{
		Traces:          traces,
		Sessions:        *sessions,
		Seed:            *seed,
		Shards:          *shards,
		AbandonProb:     *abandon,
		VibrationJitter: *vibJitter,
		OutageProb:      *outageProb,
		Outage:          outage,
	}
	// Live telemetry: one publisher feeds both the HTTP endpoint and
	// the progress printer; neither perturbs the campaign's results.
	var live *campaign.Live
	if *metricsAddr != "" || *progress {
		var reg *telemetry.Registry
		if *metricsAddr != "" {
			reg = telemetry.NewRegistry()
		}
		live = campaign.NewLive(reg)
		cfg.Live = live
	}
	if *metricsAddr != "" {
		srv, addr, err := telemetry.Serve(*metricsAddr, live.Registry())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: /metrics, /metrics.json, /debug/pprof on http://%s\n", addr)
	}
	if *progress {
		stop := make(chan struct{})
		defer close(stop)
		go printProgress(live, int64(*sessions), stop)
	}

	start := time.Now()
	res, err := campaign.Run(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	res.WallSec = elapsed.Seconds()
	if s := elapsed.Seconds(); s > 0 {
		res.SessionsPerSec = float64(res.Sessions) / s
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Printf("Campaign: %d sessions, seed %d, %d shards, abandon %.2f, vib jitter %.2f, outage %.2f\n\n",
		res.Sessions, res.Seed, res.Shards, *abandon, *vibJitter, *outageProb)
	fmt.Printf("%-9s %8s %6s | %36s | %20s | %16s | %14s\n",
		"Algorithm", "Sessions", "Quit", "Energy J (mean±std p50/p95)", "QoE (mean±std)", "Rebuffer s", "Switches")
	for _, a := range res.Algorithms {
		fmt.Printf("%-9s %8d %6d | %9.1f ±%7.1f %8.1f/%8.1f | %6.3f ±%5.3f %6.3f | %7.2f %8.2f | %6.1f %7.1f\n",
			a.Name, a.Sessions, a.Abandoned,
			a.EnergyJ.Mean, a.EnergyJ.Std, a.EnergyJ.P50, a.EnergyJ.P95,
			a.QoE.Mean, a.QoE.Std, a.QoE.P95,
			a.RebufferSec.Mean, a.RebufferSec.P95,
			a.Switches.Mean, a.Switches.P95)
	}
	if *outageProb > 0 {
		fmt.Println()
		for _, a := range res.Algorithms {
			fmt.Printf("%-9s outages: %d sessions hit, %d total, down %.2f s mean / %.2f s p95\n",
				a.Name, a.OutageSessions, a.Outages, a.OutageSec.Mean, a.OutageSec.P95)
		}
	}
	fmt.Printf("\n%d sessions in %.2fs (%.0f sessions/sec)\n",
		res.Sessions, res.WallSec, res.SessionsPerSec)
	return nil
}

// printProgress writes a live status line to stderr every second until
// stop closes: sessions done, throughput, and the ETA estimate.
func printProgress(live *campaign.Live, target int64, stop chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			fmt.Fprintln(os.Stderr)
			return
		case <-tick.C:
			done := live.Completed()
			fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d sessions (%.0f/sec, ETA %.0fs)   ",
				done, target, live.SessionsPerSec(), live.ETASec())
		}
	}
}
