// Command streamsim replays one Table V trace under a chosen bitrate
// adaptation policy and prints the session's energy and QoE metrics.
//
// Usage:
//
//	streamsim -trace 1 -algo ours
//	streamsim -trace 3 -algo festive -v
//	streamsim -trace 2 -algo optimal -alpha 0.5
//	streamsim -trace 1 -algo ours -trace-out decisions.ndjson
//	streamsim -trace 1 -algo bba -trace-out - | jq .rung
//
// -trace-out records the per-segment decision trace (what the
// algorithm saw and chose) and writes it as NDJSON to the given file,
// or to stdout with "-". -trace-sample keeps every Nth decision.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ecavs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "streamsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("streamsim", flag.ContinueOnError)
	traceID := fs.Int("trace", 1, "Table V trace id (1-5)")
	dir := fs.String("dir", "", "load the trace from this directory (tracegen output) instead of regenerating")
	algo := fs.String("algo", "ours", "policy: youtube | festive | bba | bola | mpc | ours | optimal")
	alpha := fs.Float64("alpha", ecavs.DefaultAlpha, "energy weight in [0,1] (ours/optimal)")
	verbose := fs.Bool("v", false, "print per-segment log")
	traceOut := fs.String("trace-out", "", "write the NDJSON decision trace to this file (\"-\" for stdout)")
	traceSample := fs.Int("trace-sample", 1, "keep every Nth decision in the trace")
	traceCap := fs.Int("trace-cap", 4096, "decision-trace ring capacity (oldest events overwritten)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *ecavs.Trace
	if *dir != "" {
		loaded, err := ecavs.LoadTrace(*dir, *traceID)
		if err != nil {
			return err
		}
		tr = loaded
	} else {
		traces, err := ecavs.GenerateTableVTraces()
		if err != nil {
			return err
		}
		if *traceID < 1 || *traceID > len(traces) {
			return fmt.Errorf("trace id %d out of range 1-%d", *traceID, len(traces))
		}
		tr = traces[*traceID-1]
	}

	var (
		alg ecavs.Algorithm
		err error
	)
	switch strings.ToLower(*algo) {
	case "youtube":
		alg = ecavs.NewYoutube()
	case "festive":
		alg = ecavs.NewFESTIVE()
	case "bba":
		if alg, err = ecavs.NewBBA(); err != nil {
			return err
		}
	case "bola":
		if alg, err = ecavs.NewBOLA(); err != nil {
			return err
		}
	case "mpc":
		if alg, err = ecavs.NewRobustMPC(); err != nil {
			return err
		}
	case "ours":
		if alg, err = ecavs.NewOnline(*alpha); err != nil {
			return err
		}
	case "optimal":
		if alg, _, err = ecavs.PlanOptimalForTrace(tr, *alpha); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown policy %q", *algo)
	}

	var (
		recorder *ecavs.DecisionRecorder
		opts     []ecavs.StreamOption
	)
	if *traceOut != "" {
		if recorder, err = ecavs.NewDecisionRecorder(*traceCap, *traceSample); err != nil {
			return err
		}
		opts = append(opts, ecavs.WithDecisionRecorder(recorder))
	}

	m, err := ecavs.Stream(tr, alg, opts...)
	if err != nil {
		return err
	}
	if recorder != nil {
		if err := writeTrace(*traceOut, recorder); err != nil {
			return err
		}
	}
	baseJ, err := ecavs.BaseEnergyJ(tr)
	if err != nil {
		return err
	}

	fmt.Printf("trace %d (%s): %.0f s, avg vibration %.2f, avg signal %.1f dBm\n",
		tr.ID, tr.Name, tr.LengthSec, tr.AvgVibration(), tr.AvgSignalDBm())
	fmt.Printf("policy %s:\n", m.Algorithm)
	fmt.Printf("  energy      %8.1f J (playback %.1f + download %.1f + rebuffer %.1f + startup %.1f)\n",
		m.TotalJ(), m.PlaybackJ, m.DownloadJ, m.RebufferJ, m.StartupJ)
	fmt.Printf("  base/extra  %8.1f J base, %.1f J extra\n", baseJ, m.ExtraJ(baseJ))
	fmt.Printf("  QoE         %8.3f mean (scale 1-5)\n", m.MeanQoE)
	fmt.Printf("  bitrate     %8.2f Mbps mean, %d switches\n", m.MeanBitrateMbps, m.Switches)
	fmt.Printf("  stalls      %8.1f s rebuffering, %.1f s startup\n", m.RebufferSec, m.StartupSec)
	fmt.Printf("  downloaded  %8.1f MB over %.1f s\n", m.DownloadedMB, m.DurationSec)

	if *verbose {
		fmt.Println("  segments:")
		for _, s := range m.Segments {
			fmt.Printf("    #%03d t=%7.1fs rung=%2d %4.2f Mbps %6.3f MB dl=%5.2fs th=%6.2f Mbps sig=%6.1f dBm vib=%4.2f stall=%4.2fs qoe=%.3f\n",
				s.Index, s.StartSec, s.Rung, s.BitrateMbps, s.SizeMB, s.DownloadSec,
				s.ThroughputMbps, s.MeanSignalDBm, s.Vibration, s.StallSec, s.QoE)
		}
	}
	return nil
}

// writeTrace emits the recorded decision trace as NDJSON to path, or
// to stdout for "-". The session summary goes to stdout too, so piping
// the trace usually wants a file path instead.
func writeTrace(path string, r *ecavs.DecisionRecorder) error {
	if path == "-" {
		return r.WriteNDJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
