package main

import (
	"testing"

	"ecavs"
)

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-trace", "1", "-algo", "ours"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, algo := range []string{"youtube", "festive", "bba", "bola", "mpc", "optimal"} {
		if err := run([]string{"-trace", "2", "-algo", algo}); err != nil {
			t.Errorf("run(%s): %v", algo, err)
		}
	}
}

func TestRunVerbose(t *testing.T) {
	if err := run([]string{"-trace", "1", "-algo", "youtube", "-v"}); err != nil {
		t.Fatalf("run -v: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-trace", "9"}); err == nil {
		t.Error("trace id out of range accepted")
	}
	if err := run([]string{"-algo", "bogus"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-algo", "ours", "-alpha", "7"}); err == nil {
		t.Error("out-of-range alpha accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunFromSavedTraceDir(t *testing.T) {
	dir := t.TempDir()
	traces, err := genTraces(t)
	if err != nil {
		t.Fatal(err)
	}
	if err := traces[0].Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", "1", "-dir", dir, "-algo", "youtube"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", "9", "-dir", dir}); err == nil {
		t.Error("missing trace in dir accepted")
	}
}

func genTraces(t *testing.T) ([]*ecavs.Trace, error) {
	t.Helper()
	return ecavs.GenerateTableVTraces()
}
