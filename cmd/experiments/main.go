// Command experiments regenerates the paper's tables and figures (and
// the ablations) as plain-text reports.
//
// Usage:
//
//	experiments            # run everything
//	experiments -list      # list experiment ids
//	experiments -only fig5a,tab6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ecavs/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids and exit")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, ex := range eval.Registry() {
			fmt.Printf("%-14s %s\n", ex.ID, ex.Label)
		}
		return nil
	}

	env := eval.NewEnv()
	var selected []eval.Experiment
	if *only == "" {
		selected = eval.Registry()
	} else {
		for _, id := range strings.Split(*only, ",") {
			ex, err := eval.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, ex)
		}
	}

	for _, ex := range selected {
		table, err := ex.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", ex.ID, err)
		}
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
