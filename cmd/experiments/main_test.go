package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-only", "tab2"}); err != nil {
		t.Fatalf("run(-only tab2): %v", err)
	}
}

func TestRunMultipleWithSpaces(t *testing.T) {
	if err := run([]string{"-only", "fig1a, tab2"}); err != nil {
		t.Fatalf("run(-only fig1a, tab2): %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "nope"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
