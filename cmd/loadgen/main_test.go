package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"ecavs/internal/benchfmt"
)

func TestParseRungs(t *testing.T) {
	cases := []struct {
		sel   string
		rungs int
		want  []int
		err   bool
	}{
		{"all", 3, []int{0, 1, 2}, false},
		{"", 2, []int{0, 1}, false},
		{"0,2", 3, []int{0, 2}, false},
		{"5,5,0", 6, []int{5, 5, 0}, false},
		{" 1 , 2 ", 3, []int{1, 2}, false},
		{"3", 3, nil, true},  // out of range
		{"-1", 3, nil, true}, // negative
		{"x", 3, nil, true},  // not a number
		{",", 3, nil, true},  // empty selection
	}
	for _, c := range cases {
		got, err := parseRungs(c.sel, c.rungs)
		if c.err {
			if err == nil {
				t.Errorf("parseRungs(%q, %d): want error, got %v", c.sel, c.rungs, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRungs(%q, %d): %v", c.sel, c.rungs, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseRungs(%q, %d) = %v, want %v", c.sel, c.rungs, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseRungs(%q, %d) = %v, want %v", c.sel, c.rungs, got, c.want)
				break
			}
		}
	}
}

func TestFaultPlanNilWhenAllZero(t *testing.T) {
	plan, err := faultPlan(0, 0, 0, 0, 0, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Error("all-zero probabilities produced a non-nil plan")
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-duration", "0s"},
		{"-duration", "200ms", "-rungs", "99"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

// TestRunSmoke drives the whole thing: in-process server, closed-loop
// workers, JSON report, and a benchfmt snapshot — the same path `make
// loadtest` exercises in CI.
func TestRunSmoke(t *testing.T) {
	benchOut := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-workers", "4",
		"-duration", "300ms",
		"-rungs", "0,2",
		"-video-sec", "20",
		"-json",
		"-bench-out", benchOut,
		"-min-rps", "1",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}

	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Errorf("clean server produced %d errors", rep.Errors)
	}
	if rep.Bytes == 0 || rep.BytesPerSec == 0 || rep.RequestsPerSec == 0 {
		t.Errorf("zero throughput in report: %+v", rep)
	}
	if rep.Workers != 4 || len(rep.RungMix) != 2 {
		t.Errorf("config echo wrong: workers=%d mix=%v", rep.Workers, rep.RungMix)
	}
	if rep.LatencyP50Ms <= 0 || rep.LatencyP99Ms < rep.LatencyP50Ms {
		t.Errorf("implausible percentiles: p50=%.3f p99=%.3f", rep.LatencyP50Ms, rep.LatencyP99Ms)
	}
	if rep.LatencyMaxMs < rep.LatencyP50Ms {
		t.Errorf("max %.3f below p50 %.3f", rep.LatencyMaxMs, rep.LatencyP50Ms)
	}
	if !strings.HasPrefix(rep.URL, "http://127.0.0.1:") {
		t.Errorf("expected in-process loopback URL, got %q", rep.URL)
	}

	snap, err := benchfmt.ReadFile(benchOut)
	if err != nil {
		t.Fatalf("bench-out: %v", err)
	}
	if len(snap) != 4 {
		t.Fatalf("bench-out has %d entries, want 4", len(snap))
	}
	m := benchfmt.Map(snap)
	for _, name := range []string{"Loadgen/request_mean", "Loadgen/latency_p50", "Loadgen/latency_p95", "Loadgen/latency_p99"} {
		if m[name].NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %v, want > 0", name, m[name].NsPerOp)
		}
	}
}

// Injected 5xx responses are counted as errors, and the loop keeps
// going — errors must not wedge a closed-loop worker.
func TestRunCountsFaultErrors(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-workers", "2",
		"-duration", "300ms",
		"-json",
		"-fault-5xx", "0.5",
		"-fault-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 {
		t.Error("50% 5xx produced zero errors")
	}
	if rep.Requests == 0 {
		t.Error("faulty run completed zero requests")
	}
}

// TestRunOpenLoopOverloadChaos is the shed-path chaos run: open-loop
// arrivals at far above capacity (300 req/s offered against 2
// concurrent transfers rate-shaped to 2 MB/s) must overload the
// server, and the overload must degrade gracefully — every refusal a
// 503 carrying Retry-After, every issued request accounted for exactly
// once, goodput bounded by the token-bucket cap rather than inflated
// by the excess demand, and a clean drain afterwards. This is the
// -race acceptance run; `make overload` drives the same invariants
// from the command line via -gate-overload.
func TestRunOpenLoopOverloadChaos(t *testing.T) {
	const rateMBps = 2
	var buf bytes.Buffer
	err := run([]string{
		"-rps", "300",
		"-max-inflight", "2",
		"-max-queue", "2",
		"-queue-wait", "20ms",
		"-rate", "2",
		"-rungs", "0",
		"-duration", "700ms",
		"-json",
		"-gate-overload",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.Shed == 0 {
		t.Fatal("open loop at 300 req/s against 2 slots never shed")
	}
	if rep.Requests == 0 {
		t.Fatal("overloaded server completed zero requests — shedding everything is not graceful")
	}
	if got := rep.Requests + rep.Shed + rep.Errors + rep.Aborted; got != rep.Issued {
		t.Errorf("accounting leak: issued %d but ok+shed+errors+aborted = %d", rep.Issued, got)
	}
	if rep.MissingRetryAfter != 0 {
		t.Errorf("%d 5xx responses lacked Retry-After", rep.MissingRetryAfter)
	}
	if rep.Errors != 0 {
		t.Errorf("clean overloaded server produced %d hard errors", rep.Errors)
	}
	// Goodput must stay within tolerance of what the admission cap and
	// token bucket allow — overload must not inflate delivery. 2 MB/s
	// over 25 KB rung-0 segments is 80 req/s of capacity; the wide
	// tolerance absorbs scheduler jitter in slow CI containers without
	// letting the 300 req/s offered rate leak through.
	capacity := rateMBps * 1e6
	if rep.BytesPerSec > 1.75*capacity {
		t.Errorf("egress %.0f B/s exceeds %.0f token-bucket cap beyond tolerance", rep.BytesPerSec, capacity)
	}
	if rep.ServerInFlightAfterDrain != 0 {
		t.Errorf("drain leaked %d in-flight transfers", rep.ServerInFlightAfterDrain)
	}
	// The server's own shed count must cover every polite refusal the
	// client observed (it can exceed it when the deadline cut off a
	// shed response mid-read, which the client records as an abort).
	if rep.ServerShed < rep.Shed {
		t.Errorf("server recorded %d sheds but client observed %d", rep.ServerShed, rep.Shed)
	}
}

// Latency faults compose with admission control: slow transfers hold
// slots longer, so the queue deadline does the shedding. The graceful
// degradation invariants must survive the combination.
func TestRunOpenLoopOverloadChaosLatencyFaults(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-rps", "200",
		"-max-inflight", "2",
		"-max-queue", "1",
		"-queue-wait", "15ms",
		"-rungs", "0",
		"-duration", "600ms",
		"-fault-latency", "0.5",
		"-fault-latency-for", "30ms",
		"-fault-seed", "11",
		"-json",
		"-gate-overload",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 || rep.Requests == 0 {
		t.Errorf("want both sheds and goodput under latency faults, got shed=%d ok=%d", rep.Shed, rep.Requests)
	}
	if rep.MissingRetryAfter != 0 {
		t.Errorf("%d 5xx responses lacked Retry-After", rep.MissingRetryAfter)
	}
}

// gateOverloadRun is the CI tripwire; every invariant must fail loudly.
func TestGateOverloadRun(t *testing.T) {
	good := report{Issued: 10, Requests: 5, Shed: 3, Errors: 1, Aborted: 1}
	if err := gateOverloadRun(good, true); err != nil {
		t.Errorf("balanced report tripped the gate: %v", err)
	}
	cases := []struct {
		name string
		rep  report
		want string
	}{
		{"no shedding", report{Issued: 5, Requests: 5}, "never overloaded"},
		{"accounting leak", report{Issued: 10, Requests: 5, Shed: 3}, "accounting leak"},
		{"missing retry-after", report{Issued: 10, Requests: 5, Shed: 3, Errors: 2, MissingRetryAfter: 2}, "lacked Retry-After"},
		{"leaked in-flight", report{Issued: 10, Requests: 6, Shed: 4, ServerInFlightAfterDrain: 2}, "leaked"},
	}
	for _, c := range cases {
		err := gateOverloadRun(c.rep, true)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.want, err)
		}
	}
}

func TestRunMinRPSGate(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-workers", "1",
		"-duration", "200ms",
		"-min-rps", "1e12",
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "below -min-rps") {
		t.Fatalf("want min-rps gate failure, got %v", err)
	}
}

// TestRunTraceSmoke is the acceptance scenario `make tracesmoke`
// drives: a faulty in-process server, retrying workers, tracing on
// with keep-everything sampling — the run must produce sampled
// cross-process traces whose client attempt spans and server spans
// share one trace ID, and the retries must absorb the faults.
func TestRunTraceSmoke(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-workers", "4",
		"-duration", "500ms",
		"-rungs", "0",
		"-video-sec", "20",
		"-fault-5xx", "0.25",
		"-fault-max-per-key", "1",
		"-fault-seed", "7",
		"-retries", "3",
		"-trace-cap", "2048",
		"-trace-ratio", "1",
		"-trace-slowest", "3",
		"-gate-trace",
		"-json",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, buf.String())
	}
	if rep.Requests == 0 {
		t.Fatal("no requests completed")
	}
	// Each fault plan key relents after one 5xx, so three retries must
	// absorb every injected fault: the chains end in goodput, not errors.
	if rep.Errors != 0 {
		t.Errorf("retries did not absorb the faults: %d errors", rep.Errors)
	}
	if got := rep.Requests + rep.Shed + rep.Errors + rep.Aborted; got != rep.Issued {
		t.Errorf("retry chains broke accounting: issued %d but ok+shed+errors+aborted = %d", rep.Issued, got)
	}

	tr := rep.Traces
	if tr == nil {
		t.Fatal("report has no traces section")
	}
	if tr.Kept == 0 || tr.Stored == 0 {
		t.Fatalf("keep-everything sampling kept nothing: %+v", tr)
	}
	if tr.KeptError == 0 {
		t.Errorf("injected 5xx faults produced no error-verdict traces: %+v", tr)
	}
	if tr.CrossProcess == 0 {
		t.Fatalf("no cross-process trace: %+v", tr)
	}
	if len(tr.Slowest) == 0 {
		t.Fatal("no slowest-trace breakdowns in the report")
	}
	for _, s := range tr.Slowest {
		if s.DurationMs <= 0 {
			t.Errorf("trace %s has non-positive duration %.3f", s.TraceID, s.DurationMs)
		}
		var attempts, serves int
		for _, sp := range s.Spans {
			switch {
			case sp.Service == "loadgen" && sp.Name == "attempt":
				attempts++
			case sp.Service == "server" && sp.Name == "serve_segment":
				serves++
			}
		}
		if attempts == 0 || serves == 0 {
			t.Errorf("trace %s: %d loadgen attempts, %d server serves — not end-to-end", s.TraceID, attempts, serves)
		}
	}
}

// TestRunGateTraceNeedsCap pins the flag dependency: the gate cannot
// assert anything with tracing disabled, so it must refuse to run.
func TestRunGateTraceNeedsCap(t *testing.T) {
	err := run([]string{"-duration", "100ms", "-gate-trace"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-trace-cap") {
		t.Fatalf("want -trace-cap dependency error, got %v", err)
	}
}

// gateTraceRun is the tracesmoke tripwire; each invariant must fail loudly.
func TestGateTraceRun(t *testing.T) {
	if err := gateTraceRun(&traceReport{Kept: 3, CrossProcess: 1}, true, false); err != nil {
		t.Errorf("healthy trace report tripped the gate: %v", err)
	}
	// Against an external target the server half never lands in the
	// local store, so cross-process is not required.
	if err := gateTraceRun(&traceReport{Kept: 3}, false, false); err != nil {
		t.Errorf("external-target report tripped the gate: %v", err)
	}
	// With the in-process edge in the path, a cross-process trace alone
	// is not enough: at least one miss must have merged loadgen, edge,
	// and server fragments into a single three-service trace.
	if err := gateTraceRun(&traceReport{Kept: 3, CrossProcess: 2, ThreeWay: 1}, true, true); err != nil {
		t.Errorf("healthy edge trace report tripped the gate: %v", err)
	}
	if err := gateTraceRun(&traceReport{Kept: 3, CrossProcess: 2}, true, true); err == nil || !strings.Contains(err.Error(), "three") {
		t.Errorf("edge run without a three-service trace should trip the gate, got %v", err)
	}
	cases := []struct {
		name string
		tr   *traceReport
		want string
	}{
		{"disabled", nil, "disabled"},
		{"nothing sampled", &traceReport{Seen: 100}, "no traces sampled"},
		{"no merge", &traceReport{Kept: 5}, "cross-process"},
	}
	for _, c := range cases {
		err := gateTraceRun(c.tr, true, false)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.want, err)
		}
	}
}

func TestHumanOutput(t *testing.T) {
	var buf bytes.Buffer
	writeHuman(&buf, report{
		URL: "http://x", Workers: 2, RungMix: []int{0, 1},
		DurationSec: 1, WallSec: 1.01,
		Requests: 100, Errors: 1, RequestsPerSec: 99, BytesPerSec: 2.5e6,
		LatencyMeanMs: 1.5, LatencyP50Ms: 1.2, LatencyP95Ms: 3, LatencyP99Ms: 4, LatencyMaxMs: 5,
	})
	out := buf.String()
	for _, want := range []string{"http://x", "workers 2", "rung mix [0 1]", "99.0 req/s", "2.50 MB/s", "p99 4.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("human output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	writeHuman(&buf, report{
		URL: "http://x", Workers: 1, RungMix: []int{0}, DurationSec: 1, WallSec: 1,
		Traces: &traceReport{
			Seen: 10, Kept: 4, KeptError: 1, KeptLatency: 1, KeptRatio: 2,
			Stored: 4, CrossProcess: 4,
			Slowest: []traceSummary{{
				TraceID: "aabb", DurationMs: 12.5, Services: []string{"loadgen", "server"}, Error: true,
				Spans: []traceSpanLine{
					{Service: "loadgen", Name: "request", DurationMs: 12.5},
					{Service: "server", Name: "serve_segment", OffsetMs: 1.5, DurationMs: 9, Status: "error"},
				},
			}},
		},
	})
	out = buf.String()
	for _, want := range []string{"traces  seen 10  kept 4", "cross-process 4/4", "aabb  12.50ms  [loadgen server]  !", "serve_segment", "error"} {
		if !strings.Contains(out, want) {
			t.Errorf("human trace output missing %q:\n%s", want, out)
		}
	}
}
