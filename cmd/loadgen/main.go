// Command loadgen is a concurrent load generator for the httpdash
// serving path with two drive modes. The default is a closed loop: N
// workers each fetch segments back-to-back (the next request starts
// when the previous one finishes) against a target server for a fixed
// duration, cycling through a configurable rung mix, reporting
// requests/sec, bytes/sec, and p50/p95/p99 latency from streaming P²
// estimators. With -rps it switches to an open loop that issues
// requests at a fixed offered rate regardless of completions — the
// drive an overloaded server actually sees — and classifies responses
// into goodput, sheds (5xx carrying Retry-After), errors, and aborts.
//
// Combined with the in-process admission flags, one command becomes an
// overload experiment, and -gate-overload turns it into a CI gate:
//
//	loadgen -rps 400 -max-inflight 4 -max-queue 8 -duration 2s -gate-overload
//
// The gate fails the run unless shedding actually happened, every
// issued request is accounted for (ok + shed + errors + aborted),
// every 5xx carried Retry-After, and the server drained cleanly.
//
// With no -url it stands up an in-process httpdash server on loopback
// — optionally rate-shaped (-rate) and fault-injected (-fault-*) — so
// a single command measures the full serving path:
//
//	loadgen -workers 16 -duration 10s -rungs 0,3,5 -json
//
// The JSON report is the machine-readable record; -bench-out
// additionally writes the latency percentiles as a benchfmt snapshot,
// so two load-test runs can be diffed with cmd/benchdiff exactly like
// micro-benchmark snapshots:
//
//	loadgen -duration 10s -bench-out load_old.json
//	loadgen -duration 10s -bench-out load_new.json   # after a change
//	benchdiff -old load_old.json -new load_new.json -metric ns
//
// -min-rps makes the process exit non-zero when throughput lands under
// the bar, which is what `make loadtest` gates CI on; -metrics-addr
// serves live telemetry (Prometheus text + JSON + pprof) during the
// run.
//
// -trace-cap turns on request tracing: every request chain is a root
// span with attempt (and, with -retries, backoff) children, each try
// carrying a W3C traceparent header so the in-process server's spans
// merge under the same trace ID. The tail sampler keeps errors and
// sheds, everything over -trace-latency, and a -trace-ratio slice of
// the rest; the report gains a traces section breaking down the
// -trace-slowest slowest sampled traces, -metrics-addr additionally
// serves the /debug/traces explorer, and -gate-trace turns the run
// into the CI smoke check `make tracesmoke` drives:
//
//	loadgen -duration 2s -fault-5xx 0.25 -retries 3 -trace-cap 2048 \
//	        -trace-ratio 1 -gate-trace
//
// -edge inserts a caching reverse proxy (httpdash.NewEdge) between the
// workers and the origin: requests hit the edge, repeated segments are
// served from its sharded in-memory cache, and the report gains an
// edge section — hit ratio, stale serves, and origin offload (the
// fraction of edge requests the origin never saw). -gate-hit-ratio
// turns the cache into a CI gate, and with tracing on, a miss shows up
// as one merged loadgen → edge → server trace (-gate-trace then also
// requires one three-service trace). `make edgesmoke` drives:
//
//	loadgen -edge -workers 8 -duration 2s -video-sec 20 -rungs 0 \
//	        -gate-hit-ratio 0.9 -trace-cap 1024 -trace-ratio 1 -gate-trace
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ecavs/internal/benchfmt"
	"ecavs/internal/dash"
	"ecavs/internal/edgecache"
	"ecavs/internal/faults"
	"ecavs/internal/httpdash"
	"ecavs/internal/stats"
	"ecavs/internal/telemetry"
	"ecavs/internal/tracing"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// report is the machine-readable result of one run.
type report struct {
	URL         string  `json:"url"`
	Workers     int     `json:"workers"`
	RPS         float64 `json:"rps,omitempty"` // offered rate; 0 = closed loop
	RungMix     []int   `json:"rung_mix"`
	DurationSec float64 `json:"duration_sec"`
	WallSec     float64 `json:"wall_sec"`
	// Issued counts every request started; it always equals
	// Requests + Shed + Errors + Aborted — the accounting invariant
	// -gate-overload enforces.
	Issued   int64 `json:"issued"`
	Requests int64 `json:"requests"` // completed 200s: the goodput
	// Shed counts 5xx responses carrying Retry-After — the server
	// refusing work politely. A 5xx without the header is an error and
	// counted in MissingRetryAfter.
	Shed              int64   `json:"shed"`
	Errors            int64   `json:"errors"`
	Aborted           int64   `json:"aborted"` // cut off by the run deadline mid-flight
	MissingRetryAfter int64   `json:"missing_retry_after"`
	Bytes             int64   `json:"bytes"`
	RequestsPerSec    float64 `json:"requests_per_sec"` // goodput rate
	OfferedPerSec     float64 `json:"offered_per_sec"`
	ShedRate          float64 `json:"shed_rate"` // shed / issued
	BytesPerSec       float64 `json:"bytes_per_sec"`
	// Server-side drain record, filled only for an in-process server:
	// its own shed/queued totals and the in-flight count after
	// Shutdown — 0 proves the drain leaked no transfers.
	ServerShed               int64   `json:"server_shed,omitempty"`
	ServerQueued             int64   `json:"server_queued,omitempty"`
	ServerInFlightAfterDrain int64   `json:"server_in_flight_after_drain"`
	LatencyMeanMs            float64 `json:"latency_mean_ms"`
	LatencyP50Ms             float64 `json:"latency_p50_ms"`
	LatencyP95Ms             float64 `json:"latency_p95_ms"`
	LatencyP99Ms             float64 `json:"latency_p99_ms"`
	LatencyMaxMs             float64 `json:"latency_max_ms"`
	// Traces summarises the run's sampled request traces; nil unless
	// -trace-cap enabled tracing.
	Traces *traceReport `json:"traces,omitempty"`
	// Edge summarises the caching tier; nil unless -edge ran one.
	Edge *edgeReport `json:"edge,omitempty"`
}

// edgeReport is the edge-cache section of the run report: the edge's
// request accounting plus the two derived figures a capacity review
// reads first — hit ratio and origin offload.
type edgeReport struct {
	Requests    int64 `json:"requests"`
	Hits        int64 `json:"hits"`
	Fills       int64 `json:"fills"`
	StaleServes int64 `json:"stale_serves"`
	Errors      int64 `json:"errors"`
	SharedFills int64 `json:"shared_fills"`
	Evictions   int64 `json:"evictions"`
	Entries     int64 `json:"entries"`
	CacheBytes  int64 `json:"cache_bytes"`
	// HitRatio is (hits + stale serves) / requests — traffic served
	// without a successful origin round trip of its own.
	HitRatio float64 `json:"hit_ratio"`
	// OriginRequests is what the in-process origin actually saw; -1
	// when the origin was external and unobservable.
	OriginRequests int64 `json:"origin_requests"`
	// OriginOffload is 1 - origin/edge requests (only with an
	// in-process origin): the fraction of traffic the cache absorbed.
	OriginOffload float64 `json:"origin_offload"`
}

// buildEdgeReport derives the report section from the edge snapshot
// and — when the origin ran in-process — its request counter.
func buildEdgeReport(snap httpdash.EdgeSnapshot, originRequests int64) *edgeReport {
	er := &edgeReport{
		Requests:       snap.Requests,
		Hits:           snap.Hits,
		Fills:          snap.Fills,
		StaleServes:    snap.StaleServes,
		Errors:         snap.Errors,
		SharedFills:    snap.SharedFills,
		Evictions:      snap.Cache.Evictions,
		Entries:        snap.Cache.Entries,
		CacheBytes:     snap.Cache.Bytes,
		HitRatio:       snap.HitRatio(),
		OriginRequests: originRequests,
	}
	if originRequests >= 0 && snap.Requests > 0 {
		er.OriginOffload = 1 - float64(originRequests)/float64(snap.Requests)
	}
	return er
}

// traceReport is the tracing section of the run report: the tail
// sampler's accounting plus span breakdowns of the slowest sampled
// traces.
type traceReport struct {
	Seen        int64 `json:"seen"`
	Kept        int64 `json:"kept"`
	KeptError   int64 `json:"kept_error"`
	KeptLatency int64 `json:"kept_latency"`
	KeptRatio   int64 `json:"kept_ratio"`
	Dropped     int64 `json:"dropped"`
	Stored      int   `json:"stored"` // merged traces still in the ring
	// CrossProcess counts stored traces carrying spans from more than
	// one service — proof the traceparent header crossed the wire and
	// the server joined the client's trace.
	CrossProcess int `json:"cross_process"`
	// ThreeWay counts stored traces spanning three or more services —
	// in edge mode, a miss that merged loadgen, edge, and server
	// fragments under one trace ID.
	ThreeWay int            `json:"three_way,omitempty"`
	Slowest  []traceSummary `json:"slowest,omitempty"`
}

// traceSummary is one merged trace in the report, spans flattened to
// the offset/duration breakdown a human scans for the bottleneck.
type traceSummary struct {
	TraceID    string          `json:"trace_id"`
	DurationMs float64         `json:"duration_ms"`
	Services   []string        `json:"services"`
	Error      bool            `json:"error"`
	Spans      []traceSpanLine `json:"spans"`
}

// traceSpanLine is one span row in a traceSummary.
type traceSpanLine struct {
	Service    string  `json:"service"`
	Name       string  `json:"name"`
	OffsetMs   float64 `json:"offset_ms"`
	DurationMs float64 `json:"duration_ms"`
	Status     string  `json:"status,omitempty"`
}

// buildTraceReport snapshots the store into the report's tracing
// section, with the slowest N merged traces broken down span by span.
func buildTraceReport(store *tracing.Store, slowest int) *traceReport {
	st := store.Stats()
	views := store.Views()
	tr := &traceReport{
		Seen:        st.Seen,
		Kept:        st.Kept,
		KeptError:   st.KeptError,
		KeptLatency: st.KeptLatency,
		KeptRatio:   st.KeptRatio,
		Dropped:     st.Dropped,
		Stored:      len(views),
	}
	for _, v := range views {
		if len(v.Services) >= 2 {
			tr.CrossProcess++
		}
		if len(v.Services) >= 3 {
			tr.ThreeWay++
		}
	}
	sort.SliceStable(views, func(i, j int) bool { return views[i].DurationMs > views[j].DurationMs })
	if slowest > len(views) {
		slowest = len(views)
	}
	for _, v := range views[:max(slowest, 0)] {
		s := traceSummary{TraceID: v.TraceID, DurationMs: v.DurationMs, Services: v.Services, Error: v.Error}
		for _, sp := range v.Spans {
			s.Spans = append(s.Spans, traceSpanLine{
				Service:    sp.Service,
				Name:       sp.Name,
				OffsetMs:   sp.OffsetMs,
				DurationMs: sp.DurationMs,
				Status:     sp.Status,
			})
		}
		tr.Slowest = append(tr.Slowest, s)
	}
	return tr
}

// collector aggregates worker observations. Workers hold the mutex
// only for the few counter updates per request; the requests
// themselves — the expensive part of a closed loop — run outside it.
type collector struct {
	mu        sync.Mutex
	issued    int64
	requests  int64
	shed      int64
	errors    int64
	aborted   int64
	missingRA int64
	bytes     int64
	lat       stats.Accumulator // seconds
	p50       *stats.P2
	p95       *stats.P2
	p99       *stats.P2

	// Optional telemetry mirrors (nil metrics are no-ops).
	telRequests, telErrors, telBytes, telShed *telemetry.Counter
}

func newCollector() *collector {
	return &collector{p50: stats.NewP2(0.50), p95: stats.NewP2(0.95), p99: stats.NewP2(0.99)}
}

func (c *collector) ok(latency time.Duration, n int64) {
	sec := latency.Seconds()
	c.mu.Lock()
	c.requests++
	c.bytes += n
	c.lat.Add(sec)
	c.p50.Add(sec)
	c.p95.Add(sec)
	c.p99.Add(sec)
	c.mu.Unlock()
	c.telRequests.Inc()
	c.telBytes.Add(n)
}

func (c *collector) fail() {
	c.mu.Lock()
	c.errors++
	c.mu.Unlock()
	c.telErrors.Inc()
}

func (c *collector) issue() {
	c.mu.Lock()
	c.issued++
	c.mu.Unlock()
}

// shedded records a polite refusal: a 5xx carrying Retry-After.
func (c *collector) shedded() {
	c.mu.Lock()
	c.shed++
	c.mu.Unlock()
	c.telShed.Inc()
}

// failNoRA records the impolite kind — a 5xx without Retry-After —
// which stays an error and trips the overload gate.
func (c *collector) failNoRA() {
	c.mu.Lock()
	c.errors++
	c.missingRA++
	c.mu.Unlock()
	c.telErrors.Inc()
}

// abort records a request the run deadline cut off mid-flight: neither
// goodput nor a server failure, but still part of the issued total.
func (c *collector) abort() {
	c.mu.Lock()
	c.aborted++
	c.mu.Unlock()
}

func (c *collector) report(url string, workers int, rps float64, mix []int, configured, wall time.Duration) report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := report{
		URL:               url,
		Workers:           workers,
		RPS:               rps,
		RungMix:           mix,
		DurationSec:       configured.Seconds(),
		WallSec:           wall.Seconds(),
		Issued:            c.issued,
		Requests:          c.requests,
		Shed:              c.shed,
		Errors:            c.errors,
		Aborted:           c.aborted,
		MissingRetryAfter: c.missingRA,
		Bytes:             c.bytes,
		LatencyMeanMs:     c.lat.Mean() * 1e3,
		LatencyP50Ms:      c.p50.Value() * 1e3,
		LatencyP95Ms:      c.p95.Value() * 1e3,
		LatencyP99Ms:      c.p99.Value() * 1e3,
		LatencyMaxMs:      c.lat.Max() * 1e3,
	}
	if rep.WallSec > 0 {
		rep.RequestsPerSec = float64(c.requests) / rep.WallSec
		rep.OfferedPerSec = float64(c.issued) / rep.WallSec
		rep.BytesPerSec = float64(c.bytes) / rep.WallSec
	}
	if rep.Issued > 0 {
		rep.ShedRate = float64(c.shed) / float64(c.issued)
	}
	return rep
}

// parseRungs resolves the -rungs selection against the ladder height:
// "all" is every rung, otherwise a comma-separated list of ladder
// indices cycled per request (repeats weight the mix).
func parseRungs(sel string, rungs int) ([]int, error) {
	if sel == "" || sel == "all" {
		mix := make([]int, rungs)
		for i := range mix {
			mix[i] = i
		}
		return mix, nil
	}
	var mix []int
	for _, tok := range strings.Split(sel, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		r, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("bad rung %q", tok)
		}
		if r < 0 || r >= rungs {
			return nil, fmt.Errorf("rung %d outside ladder [0, %d)", r, rungs)
		}
		mix = append(mix, r)
	}
	if len(mix) == 0 {
		return nil, errors.New("-rungs selects no rungs")
	}
	return mix, nil
}

// faultPlan assembles the optional fault plan from the -fault-* flags;
// nil when every probability is zero.
func faultPlan(p5xx, reset, stall, trunc, lat float64, stallFor, latFor time.Duration, maxPerKey int, seed int64) (*faults.Plan, error) {
	if p5xx == 0 && reset == 0 && stall == 0 && trunc == 0 && lat == 0 {
		return nil, nil
	}
	return faults.NewPlan(faults.Config{
		Error5xxProb:    p5xx,
		ResetProb:       reset,
		StallProb:       stall,
		TruncateProb:    trunc,
		LatencyProb:     lat,
		StallFor:        stallFor,
		LatencyFor:      latFor,
		MaxFaultsPerKey: maxPerKey,
	}, seed)
}

// fetchInfo GETs and parses the target's manifest, which tells the
// workers the representation IDs and segment count to cycle over.
func fetchInfo(hc *http.Client, base string) (dash.MPDInfo, error) {
	resp, err := hc.Get(base + "/manifest.mpd")
	if err != nil {
		return dash.MPDInfo{}, fmt.Errorf("fetch manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dash.MPDInfo{}, fmt.Errorf("manifest: %s", resp.Status)
	}
	mpd, err := dash.ParseMPD(resp.Body)
	if err != nil {
		return dash.MPDInfo{}, err
	}
	return dash.InfoFromMPD(mpd)
}

// fetcher issues segment requests. One fetchOne call is a retry chain
// ending in exactly one collector record, which is what keeps
// issued == ok + shed + errors + aborted even with -retries set.
type fetcher struct {
	hc      *http.Client
	tracer  *tracing.Tracer // nil = tracing off; every span call no-ops
	retries int             // extra attempts after the first, on 5xx or transport error
	coll    *collector
}

// outcome classifies one attempt — and, via the last attempt, the
// whole chain.
type outcome int

const (
	outcomeOK       outcome = iota
	outcomeShed             // 5xx carrying Retry-After: a polite refusal
	outcomeFail             // transport error or unexpected status
	outcomeFailNoRA         // 5xx without Retry-After: the impolite kind
	outcomeAbort            // run deadline cut the request off mid-flight
)

// fetchOne issues one request chain and classifies its final outcome:
// 200 is goodput, a 5xx with Retry-After is a shed, a 5xx without one
// is the error the overload gate forbids, anything cut off by the run
// deadline is an abort. With -retries set, 5xx responses and transport
// errors are retried after a short backoff; the chain still produces
// exactly one collector record, for its final outcome. With tracing on,
// the chain is one root span with an attempt child per try, and each
// try carries a traceparent header so a traced server joins the trace.
func (f *fetcher) fetchOne(ctx context.Context, url string, seg, rung int) {
	span := f.tracer.StartRoot("request")
	span.SetAttrInt("segment", int64(seg))
	span.SetAttrInt("rung", int64(rung))
	start := time.Now()
	var (
		out      outcome
		n        int64
		attempts int
	)
loop:
	for {
		attempts++
		att := span.StartChild("attempt")
		att.SetAttrInt("try", int64(attempts))
		out, n = f.attempt(ctx, url, att)
		att.End()
		switch out {
		case outcomeOK, outcomeAbort:
			break loop
		}
		if attempts > f.retries || ctx.Err() != nil {
			break
		}
		delay := time.Duration(attempts) * 5 * time.Millisecond
		if delay > 50*time.Millisecond {
			delay = 50 * time.Millisecond
		}
		bo := span.StartChild("backoff")
		bo.SetAttrDuration("wait", delay)
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			bo.SetStatus("cancelled", "run deadline during backoff")
			bo.End()
			out = outcomeAbort
			break loop
		case <-timer.C:
		}
		bo.End()
	}
	span.SetAttrInt("attempts", int64(attempts))
	switch out {
	case outcomeOK:
		span.SetAttrInt("bytes", n)
		span.End()
		f.coll.ok(time.Since(start), n)
	case outcomeShed:
		span.SetStatus("shed", "refused with Retry-After")
		span.End()
		f.coll.shedded()
	case outcomeFailNoRA:
		span.SetStatus("error", "5xx without Retry-After")
		span.End()
		f.coll.failNoRA()
	case outcomeFail:
		span.SetStatus("error", "request failed")
		span.End()
		f.coll.fail()
	case outcomeAbort:
		span.SetStatus("cancelled", "run deadline")
		span.End()
		f.coll.abort() // run over; not the server's fault
	}
}

// attempt is one HTTP round trip of a chain, recorded on att.
func (f *fetcher) attempt(ctx context.Context, url string, att *tracing.Span) (outcome, int64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		att.SetError(err)
		return outcomeFail, 0
	}
	if tp := att.TraceParent(); tp != "" {
		req.Header.Set(tracing.Header, tp)
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			att.SetStatus("cancelled", "run deadline")
			return outcomeAbort, 0
		}
		att.SetError(err)
		return outcomeFail, 0
	}
	n, cerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	att.SetAttrInt("http_status", int64(resp.StatusCode))
	switch {
	case cerr != nil:
		if ctx.Err() != nil {
			att.SetStatus("cancelled", "run deadline")
			return outcomeAbort, n
		}
		att.SetError(cerr)
		return outcomeFail, n
	case resp.StatusCode >= 500:
		if resp.Header.Get("Retry-After") != "" {
			att.SetStatus("shed", resp.Status)
			return outcomeShed, n
		}
		att.SetStatus("error", resp.Status)
		return outcomeFailNoRA, n
	case resp.StatusCode != http.StatusOK:
		att.SetStatus("error", resp.Status)
		return outcomeFail, n
	default:
		att.SetAttrInt("bytes", n)
		return outcomeOK, n
	}
}

// worker is one closed loop: fetch, record, repeat until the run
// context expires. Workers start at staggered segment/mix offsets so
// concurrent loops spread across the presentation instead of convoying
// on one URL.
func worker(ctx context.Context, id int, f *fetcher, base string, info dash.MPDInfo, mix []int) {
	seg := id % info.SegmentCount
	mi := id % len(mix)
	for ctx.Err() == nil {
		rung := mix[mi]
		mi = (mi + 1) % len(mix)
		s := seg
		url := fmt.Sprintf("%s/seg/%s/%d.m4s", base, info.RepIDs[rung], s)
		seg = (seg + 1) % info.SegmentCount
		f.coll.issue()
		f.fetchOne(ctx, url, s, rung)
	}
}

// openLoop issues requests at a fixed offered rate regardless of how
// fast earlier ones complete — unlike a closed loop, which slows down
// with the server and so can never overload it. Each request runs in
// its own goroutine under the run context; at the deadline the
// stragglers resolve as aborts before openLoop returns.
func openLoop(ctx context.Context, f *fetcher, base string, info dash.MPDInfo, mix []int, rps float64) {
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	seg, mi := 0, 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		rung := mix[mi]
		mi = (mi + 1) % len(mix)
		s := seg
		url := fmt.Sprintf("%s/seg/%s/%d.m4s", base, info.RepIDs[rung], s)
		seg = (seg + 1) % info.SegmentCount
		f.coll.issue()
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.fetchOne(ctx, url, s, rung)
		}()
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "", "target base URL serving /manifest.mpd (default: in-process server)")
	workers := fs.Int("workers", 8, "concurrent closed-loop workers (ignored with -rps)")
	rps := fs.Float64("rps", 0, "open-loop offered rate in requests/sec (0 = closed loop)")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	rungsSel := fs.String("rungs", "all", "rung mix: \"all\" or comma-separated ladder indices (repeats weight the mix)")
	videoSec := fs.Float64("video-sec", 60, "in-process presentation length in seconds")
	rate := fs.Float64("rate", 0, "in-process server shaping in MB/s, shared across connections (0 = unshaped)")
	f5xx := fs.Float64("fault-5xx", 0, "in-process server 5xx probability")
	fReset := fs.Float64("fault-reset", 0, "in-process server connection-reset probability")
	fStall := fs.Float64("fault-stall", 0, "in-process server stall probability")
	fTrunc := fs.Float64("fault-truncate", 0, "in-process server truncated-body probability")
	fLat := fs.Float64("fault-latency", 0, "in-process server added-latency probability")
	fStallFor := fs.Duration("fault-stall-for", 2*time.Second, "stall length")
	fLatFor := fs.Duration("fault-latency-for", 200*time.Millisecond, "added latency")
	fMax := fs.Int("fault-max-per-key", 0, "faults per URL before the plan relents (0 = never)")
	fSeed := fs.Int64("fault-seed", 1, "fault plan seed")
	maxInflight := fs.Int("max-inflight", 0, "in-process server admission cap on concurrent transfers (0 = unbounded)")
	maxQueue := fs.Int("max-queue", 0, "in-process server admission wait-queue depth")
	queueWait := fs.Duration("queue-wait", 100*time.Millisecond, "in-process server admission queue deadline")
	priorityShed := fs.Bool("priority-shed", false, "in-process server sheds top ladder rungs first under pressure")
	retries := fs.Int("retries", 0, "retries per request on 5xx or transport error (0 = none)")
	edgeMode := fs.Bool("edge", false, "front the origin with a caching edge proxy; workers hit the edge")
	edgeCapacity := fs.Int64("edge-capacity", httpdash.DefaultEdgeCapacityBytes, "edge cache byte budget")
	edgeShards := fs.Int("edge-shards", edgecache.DefaultShards, "edge cache shard count (power of two)")
	edgeFresh := fs.Duration("edge-fresh", httpdash.DefaultEdgeFreshFor, "edge freshness window: younger entries skip origin revalidation")
	edgeStale := fs.Duration("edge-stale", httpdash.DefaultEdgeStaleFor, "edge staleness window: how far past fresh an entry may still cover an origin failure")
	gateHitRatio := fs.Float64("gate-hit-ratio", 0, "exit non-zero unless the edge hit ratio reaches this and edge accounting balances (needs -edge)")
	traceCap := fs.Int("trace-cap", 0, "trace ring capacity; 0 disables request tracing")
	traceRatio := fs.Float64("trace-ratio", 0.01, "tail-sampling keep ratio for healthy traces")
	traceLatency := fs.Duration("trace-latency", 250*time.Millisecond, "tail-sampling latency threshold; slower traces are always kept")
	traceSlowest := fs.Int("trace-slowest", 3, "slowest sampled traces broken down in the report")
	gateTrace := fs.Bool("gate-trace", false, "exit non-zero unless a sampled cross-process trace was captured (needs -trace-cap)")
	gateOverload := fs.Bool("gate-overload", false, "exit non-zero unless shedding occurred, accounting balances, every 5xx carried Retry-After, and the drain leaked nothing")
	jsonOut := fs.Bool("json", false, "write the report as JSON to stdout")
	benchOut := fs.String("bench-out", "", "also write latency percentiles as a benchfmt snapshot to this file")
	minRPS := fs.Float64("min-rps", 0, "exit non-zero when requests/sec lands below this")
	metricsAddr := fs.String("metrics-addr", "", "serve live telemetry (Prometheus/JSON/pprof) on this address during the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return errors.New("-workers must be at least 1")
	}
	if *duration <= 0 {
		return errors.New("-duration must be positive")
	}
	if *rps < 0 {
		return errors.New("-rps must be non-negative")
	}
	if *retries < 0 {
		return errors.New("-retries must be non-negative")
	}
	if *gateTrace && *traceCap <= 0 {
		return errors.New("-gate-trace needs -trace-cap > 0 to sample traces")
	}
	if *gateHitRatio > 0 && !*edgeMode {
		return errors.New("-gate-hit-ratio needs -edge")
	}

	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
	}

	// Tracing topology: one shared store, a "loadgen" tracer on the
	// request chains, and — for an in-process target — a "server" tracer
	// so both halves of every request merge under one trace ID. Both
	// sides run the same sampler; the ratio slice hashes the trace ID,
	// so they agree on every verdict without coordination.
	var traceStore *tracing.Store
	var clientTracer *tracing.Tracer
	sampler := tracing.Sampler{KeepErrors: true, LatencyThreshold: *traceLatency, Ratio: *traceRatio}
	if *traceCap > 0 {
		traceStore = tracing.NewStore(*traceCap)
		clientTracer = tracing.New(tracing.Config{Service: "loadgen", Sampler: sampler, Seed: 1}, traceStore)
		reg.AttachTraces(traceStore) // nil registry is a no-op
	}

	base := *url
	var srv *httpdash.Server // non-nil for an in-process target: drained and snapshotted after the run
	if base == "" {
		plan, err := faultPlan(*f5xx, *fReset, *fStall, *fTrunc, *fLat, *fStallFor, *fLatFor, *fMax, *fSeed)
		if err != nil {
			return err
		}
		video := dash.Video{Title: "loadgen", SpatialInfo: 45, TemporalInfo: 15, DurationSec: *videoSec}
		m, err := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{SegmentSec: 2, VBRJitter: 0, Seed: 1})
		if err != nil {
			return err
		}
		opts := []httpdash.ServerOption{httpdash.WithRateLimitMBps(*rate)}
		if plan != nil {
			opts = append(opts, httpdash.WithFaults(plan))
		}
		if *maxInflight > 0 {
			opts = append(opts, httpdash.WithAdmissionControl(httpdash.AdmissionConfig{
				MaxInFlight:    *maxInflight,
				MaxQueue:       *maxQueue,
				QueueWait:      *queueWait,
				PriorityByRung: *priorityShed,
			}))
		}
		if reg != nil {
			opts = append(opts, httpdash.WithServerTelemetry(reg))
		}
		if traceStore != nil {
			serverTracer := tracing.New(tracing.Config{Service: "server", Sampler: sampler, Seed: 2}, traceStore)
			opts = append(opts, httpdash.WithServerTracing(serverTracer))
		}
		srv, err = httpdash.NewServer(m, opts...)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	// -edge slots the caching proxy between the workers and whatever
	// base points at (the in-process origin or an external -url): the
	// edge listens on its own loopback socket and base moves to it, so
	// every worker request flows through the cache.
	var edge *httpdash.Edge
	if *edgeMode {
		edgeOpts := []httpdash.EdgeOption{
			httpdash.WithEdgeCache(edgecache.Config{CapacityBytes: *edgeCapacity, Shards: *edgeShards}),
			httpdash.WithEdgeFreshness(*edgeFresh, *edgeStale),
		}
		if reg != nil {
			edgeOpts = append(edgeOpts, httpdash.WithEdgeTelemetry(reg))
		}
		if traceStore != nil {
			edgeTracer := tracing.New(tracing.Config{Service: "edge", Sampler: sampler, Seed: 3}, traceStore)
			edgeOpts = append(edgeOpts, httpdash.WithEdgeTracing(edgeTracer))
		}
		var err error
		edge, err = httpdash.NewEdge(base, edgeOpts...)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		es := &http.Server{Handler: edge}
		go func() { _ = es.Serve(ln) }()
		defer es.Close()
		base = "http://" + ln.Addr().String()
	}

	hc := &http.Client{Timeout: 30 * time.Second, Transport: httpdash.NewTransport()}
	defer hc.CloseIdleConnections()
	info, err := fetchInfo(hc, base)
	if err != nil {
		return err
	}
	mix, err := parseRungs(*rungsSel, len(info.Ladder))
	if err != nil {
		return err
	}

	coll := newCollector()
	start := time.Now()
	if reg != nil {
		coll.telRequests = reg.Counter("loadgen_requests_total", "Segment requests completed successfully.")
		coll.telErrors = reg.Counter("loadgen_errors_total", "Segment requests that failed.")
		coll.telShed = reg.Counter("loadgen_shed_total", "Segment requests the server shed with Retry-After.")
		coll.telBytes = reg.Counter("loadgen_bytes_total", "Segment payload bytes received.")
		reg.GaugeFunc("loadgen_requests_per_sec", "Running mean request rate.", func() float64 {
			coll.mu.Lock()
			n := coll.requests
			coll.mu.Unlock()
			return float64(n) / time.Since(start).Seconds()
		})
		msrv, addr, err := telemetry.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "loadgen: telemetry on http://%s/metrics\n", addr)
	}

	f := &fetcher{hc: hc, tracer: clientTracer, retries: *retries, coll: coll}
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start = time.Now()
	if *rps > 0 {
		openLoop(ctx, f, base, info, mix, *rps)
	} else {
		var wg sync.WaitGroup
		for i := 0; i < *workers; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				worker(ctx, id, f, base, info, mix)
			}(i)
		}
		wg.Wait()
	}
	wall := time.Since(start)

	rep := coll.report(base, *workers, *rps, mix, *duration, wall)
	if srv != nil {
		// Drain the in-process server and record what it saw: its shed
		// and queue totals, and — the leak check — how many transfers
		// were still in flight after Shutdown returned.
		drainCtx, drainCancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := srv.Shutdown(drainCtx)
		drainCancel()
		if err != nil {
			return fmt.Errorf("server drain: %w", err)
		}
		snap := srv.Snapshot()
		rep.ServerShed = snap.Shed
		rep.ServerQueued = snap.Queued
		rep.ServerInFlightAfterDrain = snap.InFlight
	}
	if edge != nil {
		originRequests := int64(-1) // external origin: unobservable
		if srv != nil {
			originRequests = srv.Snapshot().Requests
		}
		rep.Edge = buildEdgeReport(edge.Snapshot(), originRequests)
	}
	if traceStore != nil {
		rep.Traces = buildTraceReport(traceStore, *traceSlowest)
	}
	if *benchOut != "" {
		snap := []benchfmt.Result{
			{Name: "Loadgen/request_mean", NsPerOp: rep.LatencyMeanMs * 1e6},
			{Name: "Loadgen/latency_p50", NsPerOp: rep.LatencyP50Ms * 1e6},
			{Name: "Loadgen/latency_p95", NsPerOp: rep.LatencyP95Ms * 1e6},
			{Name: "Loadgen/latency_p99", NsPerOp: rep.LatencyP99Ms * 1e6},
		}
		if err := benchfmt.WriteFile(*benchOut, snap); err != nil {
			return err
		}
	}
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", data)
	} else {
		writeHuman(stdout, rep)
	}
	if *minRPS > 0 && rep.RequestsPerSec < *minRPS {
		return fmt.Errorf("requests/sec %.1f below -min-rps %.1f", rep.RequestsPerSec, *minRPS)
	}
	if *gateOverload {
		if err := gateOverloadRun(rep, srv != nil); err != nil {
			return fmt.Errorf("overload gate: %w", err)
		}
	}
	if *gateTrace {
		if err := gateTraceRun(rep.Traces, srv != nil, edge != nil); err != nil {
			return fmt.Errorf("trace gate: %w", err)
		}
	}
	if *gateHitRatio > 0 {
		if err := gateEdgeRun(rep.Edge, *gateHitRatio); err != nil {
			return fmt.Errorf("edge gate: %w", err)
		}
	}
	return nil
}

// gateEdgeRun enforces the edge invariants on a finished run: the hit
// ratio reached the bar, and every edge request resolved to exactly
// one of hit, fill, stale serve, or error.
func gateEdgeRun(er *edgeReport, minRatio float64) error {
	if er == nil {
		return errors.New("no edge ran (-edge not set)")
	}
	if got := er.Hits + er.Fills + er.StaleServes + er.Errors; got != er.Requests {
		return fmt.Errorf("accounting leak: %d requests but hits+fills+stale+errors = %d", er.Requests, got)
	}
	if er.HitRatio < minRatio {
		return fmt.Errorf("hit ratio %.3f below %.3f (%d hits / %d requests)", er.HitRatio, minRatio, er.Hits, er.Requests)
	}
	return nil
}

// gateTraceRun enforces that tracing actually worked end to end: the
// tail sampler kept at least one trace, and — when the server ran
// in-process with its own tracer — at least one kept trace is
// cross-process, proving the traceparent header crossed the wire and
// the server's spans merged under the client's trace ID. In edge mode
// against an in-process origin, the bar rises to a three-service
// trace: a sampled miss must merge loadgen, edge, and server.
func gateTraceRun(tr *traceReport, inProcess, edged bool) error {
	if tr == nil {
		return errors.New("tracing disabled (-trace-cap 0)")
	}
	if tr.Kept == 0 {
		return fmt.Errorf("no traces sampled (%d seen) — raise -trace-ratio or lower -trace-latency", tr.Seen)
	}
	if inProcess && tr.CrossProcess == 0 {
		return errors.New("no cross-process trace: client and server fragments never merged")
	}
	if inProcess && edged && tr.ThreeWay == 0 {
		return errors.New("no three-service trace: no sampled miss merged loadgen, edge, and server")
	}
	return nil
}

// gateOverloadRun enforces the overload invariants on a finished run:
// the server actually shed (the run overloaded it), every issued
// request is accounted for exactly once, refusals were all polite
// (Retry-After present), and — for an in-process server — the drain
// left nothing in flight.
func gateOverloadRun(rep report, inProcess bool) error {
	if rep.Shed == 0 {
		return errors.New("no requests shed — the run never overloaded the server")
	}
	if got := rep.Requests + rep.Shed + rep.Errors + rep.Aborted; got != rep.Issued {
		return fmt.Errorf("accounting leak: issued %d but ok+shed+errors+aborted = %d", rep.Issued, got)
	}
	if rep.MissingRetryAfter != 0 {
		return fmt.Errorf("%d 5xx responses lacked Retry-After", rep.MissingRetryAfter)
	}
	if inProcess && rep.ServerInFlightAfterDrain != 0 {
		return fmt.Errorf("drain leaked %d in-flight transfers", rep.ServerInFlightAfterDrain)
	}
	return nil
}

// writeHuman renders the report as a compact table.
func writeHuman(w io.Writer, rep report) {
	mix := make([]string, len(rep.RungMix))
	for i, r := range rep.RungMix {
		mix[i] = strconv.Itoa(r)
	}
	fmt.Fprintf(w, "loadgen %s\n", rep.URL)
	if rep.RPS > 0 {
		fmt.Fprintf(w, "  open loop %.0f req/s offered  duration %.1fs (wall %.2fs)  rung mix [%s]\n",
			rep.RPS, rep.DurationSec, rep.WallSec, strings.Join(mix, " "))
	} else {
		fmt.Fprintf(w, "  workers %d  duration %.1fs (wall %.2fs)  rung mix [%s]\n",
			rep.Workers, rep.DurationSec, rep.WallSec, strings.Join(mix, " "))
	}
	fmt.Fprintf(w, "  requests %d (%d errors)  %.1f req/s  %.2f MB/s\n",
		rep.Requests, rep.Errors, rep.RequestsPerSec, rep.BytesPerSec/1e6)
	if rep.Shed > 0 || rep.RPS > 0 {
		fmt.Fprintf(w, "  issued %d  shed %d (%.0f%%)  aborted %d  goodput %.1f req/s of %.1f offered\n",
			rep.Issued, rep.Shed, rep.ShedRate*100, rep.Aborted, rep.RequestsPerSec, rep.OfferedPerSec)
	}
	if rep.ServerShed > 0 || rep.ServerQueued > 0 {
		fmt.Fprintf(w, "  server shed %d  queued %d  in-flight after drain %d\n",
			rep.ServerShed, rep.ServerQueued, rep.ServerInFlightAfterDrain)
	}
	if e := rep.Edge; e != nil {
		fmt.Fprintf(w, "  edge  requests %d  hits %d  fills %d  stale %d  errors %d  hit ratio %.1f%%\n",
			e.Requests, e.Hits, e.Fills, e.StaleServes, e.Errors, e.HitRatio*100)
		if e.OriginRequests >= 0 {
			fmt.Fprintf(w, "  edge  origin saw %d requests  offload %.1f%%  cache %d entries / %.2f MB  evictions %d\n",
				e.OriginRequests, e.OriginOffload*100, e.Entries, float64(e.CacheBytes)/1e6, e.Evictions)
		}
	}
	fmt.Fprintf(w, "  latency ms  mean %.2f  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		rep.LatencyMeanMs, rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms, rep.LatencyMaxMs)
	if tr := rep.Traces; tr != nil {
		fmt.Fprintf(w, "  traces  seen %d  kept %d (error %d, latency %d, ratio %d)  cross-process %d/%d\n",
			tr.Seen, tr.Kept, tr.KeptError, tr.KeptLatency, tr.KeptRatio, tr.CrossProcess, tr.Stored)
		for _, s := range tr.Slowest {
			flag := ""
			if s.Error {
				flag = "  !"
			}
			fmt.Fprintf(w, "    %s  %.2fms  [%s]%s\n", s.TraceID, s.DurationMs, strings.Join(s.Services, " "), flag)
			for _, sp := range s.Spans {
				status := ""
				if sp.Status != "" {
					status = "  " + sp.Status
				}
				fmt.Fprintf(w, "      %-7s %-14s +%8.2fms %8.2fms%s\n",
					sp.Service, sp.Name, sp.OffsetMs, sp.DurationMs, status)
			}
		}
	}
}
