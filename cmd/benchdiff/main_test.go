package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: ecavs
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkOptimalPlanner-8   	    2276	    519957 ns/op	    8640 B/op	      11 allocs/op
BenchmarkOnlineDecision-8   	  230864	      5144 ns/op	     592 B/op	       4 allocs/op
BenchmarkSessionOnline      	     684	   1729509 ns/op	 3063192 B/op	    3068 allocs/op
PASS
ok  	ecavs	12.3s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	pl, ok := byName["BenchmarkOptimalPlanner"]
	if !ok {
		t.Fatalf("missing BenchmarkOptimalPlanner (GOMAXPROCS suffix not trimmed?): %v", byName)
	}
	if pl.NsPerOp != 519957 || pl.AllocsOp != 11 || pl.BytesOp != 8640 {
		t.Errorf("planner parsed as %+v", pl)
	}
	if _, ok := byName["BenchmarkSessionOnline"]; !ok {
		t.Error("suffix-free benchmark name not parsed")
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	oldRes := map[string]Result{
		"A": {Name: "A", NsPerOp: 100, AllocsOp: 10},
		"B": {Name: "B", NsPerOp: 100, AllocsOp: 10},
		"C": {Name: "C", NsPerOp: 100, AllocsOp: 10},
	}
	newRes := map[string]Result{
		"A": {Name: "A", NsPerOp: 119, AllocsOp: 10}, // within 20%
		"B": {Name: "B", NsPerOp: 130, AllocsOp: 10}, // ns/op regression
		"C": {Name: "C", NsPerOp: 90, AllocsOp: 13},  // allocs/op regression
	}
	var buf bytes.Buffer
	err := compare(&buf, oldRes, newRes, 0.20)
	if err == nil {
		t.Fatalf("want regression error, got nil; output:\n%s", buf.String())
	}
	for _, name := range []string{"B", "C"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name regressed benchmark %s", err, name)
		}
	}
	if strings.Contains(err.Error(), "A") && !strings.Contains(err.Error(), "2 benchmark") {
		t.Errorf("benchmark A within threshold flagged: %v", err)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldRes := map[string]Result{"A": {Name: "A", NsPerOp: 1000, AllocsOp: 100}}
	newRes := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsOp: 5}}
	var buf bytes.Buffer
	if err := compare(&buf, oldRes, newRes, 0.20); err != nil {
		t.Fatalf("improvement flagged as regression: %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-parse", "-out", snap}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var list []Result
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if len(list) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(list))
	}
	// Identical snapshots compare clean.
	if err := run([]string{"-old", snap, "-new", snap}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	if !strings.Contains(out.String(), "OK: 3 benchmarks") {
		t.Errorf("unexpected compare output:\n%s", out.String())
	}
}

func TestCompareReportsAddedAndRemoved(t *testing.T) {
	oldRes := map[string]Result{
		"Shared":  {Name: "Shared", NsPerOp: 100, AllocsOp: 10},
		"OldOnly": {Name: "OldOnly", NsPerOp: 50, AllocsOp: 5},
	}
	newRes := map[string]Result{
		"Shared":  {Name: "Shared", NsPerOp: 105, AllocsOp: 10},
		"NewOnly": {Name: "NewOnly", NsPerOp: 200, AllocsOp: 20},
	}
	var buf bytes.Buffer
	if err := compare(&buf, oldRes, newRes, 0.20); err != nil {
		t.Fatalf("added/removed benchmarks must not fail the comparison: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"+ NewOnly", "(added)", "- OldOnly", "(removed)", "1 added, 1 removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The added benchmark's numbers appear even without a baseline.
	if !strings.Contains(out, "200") || !strings.Contains(out, "20") {
		t.Errorf("added benchmark's measurements not printed:\n%s", out)
	}
}

func TestCompareNoSharedBenchmarks(t *testing.T) {
	oldRes := map[string]Result{"A": {Name: "A", NsPerOp: 1}}
	newRes := map[string]Result{"B": {Name: "B", NsPerOp: 1}}
	if err := compare(&bytes.Buffer{}, oldRes, newRes, 0.20); err == nil {
		t.Fatal("disjoint snapshots must error rather than pass vacuously")
	}
}

func TestRunRejectsMissingArgs(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("want usage error, got nil")
	}
}
