package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: ecavs
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkOptimalPlanner-8   	    2276	    519957 ns/op	    8640 B/op	      11 allocs/op
BenchmarkOnlineDecision-8   	  230864	      5144 ns/op	     592 B/op	       4 allocs/op
BenchmarkSessionOnline      	     684	   1729509 ns/op	 3063192 B/op	    3068 allocs/op
PASS
ok  	ecavs	12.3s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	pl, ok := byName["BenchmarkOptimalPlanner"]
	if !ok {
		t.Fatalf("missing BenchmarkOptimalPlanner (GOMAXPROCS suffix not trimmed?): %v", byName)
	}
	if pl.NsPerOp != 519957 || pl.AllocsOp != 11 || pl.BytesOp != 8640 {
		t.Errorf("planner parsed as %+v", pl)
	}
	if _, ok := byName["BenchmarkSessionOnline"]; !ok {
		t.Error("suffix-free benchmark name not parsed")
	}
}

// allGates builds the default gate set (ns, allocs, bytes) at one
// shared threshold, the way run does with no overrides.
func allGates(t *testing.T, threshold float64) []metricGate {
	t.Helper()
	gates, err := parseGates("ns,allocs,bytes", threshold, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	return gates
}

func TestCompareDetectsRegression(t *testing.T) {
	oldRes := map[string]Result{
		"A": {Name: "A", NsPerOp: 100, AllocsOp: 10},
		"B": {Name: "B", NsPerOp: 100, AllocsOp: 10},
		"C": {Name: "C", NsPerOp: 100, AllocsOp: 10},
	}
	newRes := map[string]Result{
		"A": {Name: "A", NsPerOp: 119, AllocsOp: 10}, // within 20%
		"B": {Name: "B", NsPerOp: 130, AllocsOp: 10}, // ns/op regression
		"C": {Name: "C", NsPerOp: 90, AllocsOp: 13},  // allocs/op regression
	}
	var buf bytes.Buffer
	err := compare(&buf, oldRes, newRes, allGates(t, 0.20))
	if err == nil {
		t.Fatalf("want regression error, got nil; output:\n%s", buf.String())
	}
	for _, name := range []string{"B", "C"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not name regressed benchmark %s", err, name)
		}
	}
	if strings.Contains(err.Error(), "A") && !strings.Contains(err.Error(), "2 benchmark") {
		t.Errorf("benchmark A within threshold flagged: %v", err)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	oldRes := map[string]Result{"A": {Name: "A", NsPerOp: 1000, AllocsOp: 100}}
	newRes := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsOp: 5}}
	var buf bytes.Buffer
	if err := compare(&buf, oldRes, newRes, allGates(t, 0.20)); err != nil {
		t.Fatalf("improvement flagged as regression: %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "bench.json")
	var out bytes.Buffer
	if err := run([]string{"-parse", "-out", snap}, strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var list []Result
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if len(list) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(list))
	}
	// Identical snapshots compare clean.
	if err := run([]string{"-old", snap, "-new", snap}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	if !strings.Contains(out.String(), "OK: 3 benchmarks") {
		t.Errorf("unexpected compare output:\n%s", out.String())
	}
}

func TestCompareReportsAddedAndRemoved(t *testing.T) {
	oldRes := map[string]Result{
		"Shared":  {Name: "Shared", NsPerOp: 100, AllocsOp: 10},
		"OldOnly": {Name: "OldOnly", NsPerOp: 50, AllocsOp: 5},
	}
	newRes := map[string]Result{
		"Shared":  {Name: "Shared", NsPerOp: 105, AllocsOp: 10},
		"NewOnly": {Name: "NewOnly", NsPerOp: 200, AllocsOp: 20},
	}
	var buf bytes.Buffer
	if err := compare(&buf, oldRes, newRes, allGates(t, 0.20)); err != nil {
		t.Fatalf("added/removed benchmarks must not fail the comparison: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"+ NewOnly", "(added)", "- OldOnly", "(removed)", "1 added, 1 removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The added benchmark's numbers appear even without a baseline.
	if !strings.Contains(out, "200") || !strings.Contains(out, "20") {
		t.Errorf("added benchmark's measurements not printed:\n%s", out)
	}
}

func TestCompareNoSharedBenchmarks(t *testing.T) {
	oldRes := map[string]Result{"A": {Name: "A", NsPerOp: 1}}
	newRes := map[string]Result{"B": {Name: "B", NsPerOp: 1}}
	if err := compare(&bytes.Buffer{}, oldRes, newRes, allGates(t, 0.20)); err == nil {
		t.Fatal("disjoint snapshots must error rather than pass vacuously")
	}
}

func TestRunRejectsMissingArgs(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("want usage error, got nil")
	}
}

func TestCompareDetectsBytesRegression(t *testing.T) {
	oldRes := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsOp: 10, BytesOp: 1000}}
	newRes := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsOp: 10, BytesOp: 1300}}
	var buf bytes.Buffer
	err := compare(&buf, oldRes, newRes, allGates(t, 0.20))
	if err == nil {
		t.Fatalf("B/op regression not caught; output:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "B/op") {
		t.Errorf("error %q does not name the regressed metric", err)
	}
}

func TestComparePerMetricThreshold(t *testing.T) {
	oldRes := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsOp: 10, BytesOp: 1000}}
	// +10% everywhere: inside the 20% base gate, outside a 5% alloc gate.
	newRes := map[string]Result{"A": {Name: "A", NsPerOp: 110, AllocsOp: 11, BytesOp: 1100}}
	gates, err := parseGates("ns,allocs,bytes", 0.20, 0.05, -1)
	if err != nil {
		t.Fatal(err)
	}
	cmpErr := compare(&bytes.Buffer{}, oldRes, newRes, gates)
	if cmpErr == nil {
		t.Fatal("tightened allocs/op gate did not fire")
	}
	if !strings.Contains(cmpErr.Error(), "allocs/op") {
		t.Errorf("error %q does not name allocs/op", cmpErr)
	}
	if strings.Contains(cmpErr.Error(), "ns/op") || strings.Contains(cmpErr.Error(), "B/op") {
		t.Errorf("metrics within their own thresholds flagged: %v", cmpErr)
	}
}

func TestCompareMetricSelection(t *testing.T) {
	oldRes := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsOp: 10, BytesOp: 1000}}
	// Huge alloc and byte regressions, flat time.
	newRes := map[string]Result{"A": {Name: "A", NsPerOp: 100, AllocsOp: 30, BytesOp: 9000}}
	gates, err := parseGates("ns", 0.20, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compare(&buf, oldRes, newRes, gates); err != nil {
		t.Fatalf("-metric ns must ignore ungated regressions: %v", err)
	}
	// The ungated metrics still appear in the table for eyeballs.
	if !strings.Contains(buf.String(), "9000") {
		t.Errorf("ungated B/op value missing from table:\n%s", buf.String())
	}
}

func TestParseGates(t *testing.T) {
	gates, err := parseGates("ns, allocs,allocs", 0.20, -1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(gates) != 2 || gates[0].name != "ns/op" || gates[1].name != "allocs/op" {
		t.Fatalf("gates = %+v, want deduped [ns/op allocs/op]", gates)
	}
	if gates[1].threshold != 0.20 {
		t.Errorf("allocs threshold %v, want inherited 0.20", gates[1].threshold)
	}
	if _, err := parseGates("ns,heap", 0.20, -1, -1); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, err := parseGates(" , ", 0.20, -1, -1); err == nil {
		t.Error("empty metric selection accepted")
	}
	bytesOnly, err := parseGates("bytes", 0.20, -1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if bytesOnly[0].threshold != 0.05 {
		t.Errorf("bytes threshold %v, want override 0.05", bytesOnly[0].threshold)
	}
}

func TestRunMetricFlags(t *testing.T) {
	dir := t.TempDir()
	oldSnap := filepath.Join(dir, "old.json")
	newSnap := filepath.Join(dir, "new.json")
	writeSnap := func(path string, r Result) {
		data, err := json.Marshal([]Result{r})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSnap(oldSnap, Result{Name: "A", NsPerOp: 100, AllocsOp: 10, BytesOp: 1000})
	writeSnap(newSnap, Result{Name: "A", NsPerOp: 100, AllocsOp: 10, BytesOp: 1500})
	var out bytes.Buffer
	// Default gates catch the B/op regression...
	if err := run([]string{"-old", oldSnap, "-new", newSnap}, strings.NewReader(""), &out); err == nil {
		t.Fatal("default gates missed a 50% B/op regression")
	}
	// ...and -metric narrows the gate set back to passing.
	if err := run([]string{"-old", oldSnap, "-new", newSnap, "-metric", "ns,allocs"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("-metric ns,allocs should pass: %v", err)
	}
	if err := run([]string{"-old", oldSnap, "-new", newSnap, "-metric", "heap"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("unknown -metric value accepted")
	}
}
