// Command benchdiff guards against performance regressions.
//
// It has two modes. Parse mode reads `go test -bench -benchmem`
// output (stdin or -in) and writes a JSON snapshot of every benchmark
// (name, ns/op, allocs/op, B/op):
//
//	go test -bench=. -benchmem ./... | benchdiff -parse -out BENCH_2026-08-06.json
//
// Compare mode diffs two snapshots and exits non-zero when any
// benchmark present in both regressed by more than the threshold
// (default 20%) on ns/op or allocs/op:
//
//	benchdiff -old BENCH_2026-08-01.json -new BENCH_2026-08-06.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's snapshot entry.
type Result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	parse := fs.Bool("parse", false, "parse `go test -bench` output into a JSON snapshot")
	in := fs.String("in", "", "bench output to parse (default stdin)")
	out := fs.String("out", "", "snapshot file to write (default stdout)")
	oldPath := fs.String("old", "", "baseline snapshot (compare mode)")
	newPath := fs.String("new", "", "candidate snapshot (compare mode)")
	threshold := fs.Float64("threshold", 0.20, "max allowed fractional regression on ns/op or allocs/op")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *parse {
		r := stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		results, err := parseBench(r)
		if err != nil {
			return err
		}
		if len(results) == 0 {
			return fmt.Errorf("no benchmark lines found")
		}
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *out != "" {
			return os.WriteFile(*out, data, 0o644)
		}
		_, err = stdout.Write(data)
		return err
	}

	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("need either -parse, or both -old and -new")
	}
	oldRes, err := loadSnapshot(*oldPath)
	if err != nil {
		return err
	}
	newRes, err := loadSnapshot(*newPath)
	if err != nil {
		return err
	}
	return compare(stdout, oldRes, newRes, *threshold)
}

// parseBench extracts benchmark results from `go test -bench` output.
// Lines look like:
//
//	BenchmarkOptimalPlanner-8  2276  519957 ns/op  8640 B/op  11 allocs/op
func parseBench(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := Result{Name: trimProcSuffix(fields[0])}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "allocs/op":
				res.AllocsOp = v
			case "B/op":
				res.BytesOp = v
			}
		}
		if ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

// trimProcSuffix strips the -<GOMAXPROCS> suffix so snapshots taken on
// machines with different core counts stay comparable by name.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func loadSnapshot(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []Result
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(list))
	for _, r := range list {
		m[r.Name] = r
	}
	return m, nil
}

// compare prints a per-benchmark delta table — including benchmarks
// present in only one snapshot, reported as added or removed — and
// returns an error when any shared benchmark regressed beyond the
// threshold on ns/op or allocs/op. Added and removed benchmarks never
// fail the comparison (new benchmarks have no baseline; deletions are
// deliberate), but they are printed so a silently vanished benchmark
// cannot masquerade as a clean run.
func compare(w io.Writer, oldRes, newRes map[string]Result, threshold float64) error {
	var shared, added, removed []string
	for name := range newRes {
		if _, ok := oldRes[name]; ok {
			shared = append(shared, name)
		} else {
			added = append(added, name)
		}
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(shared)
	sort.Strings(added)
	sort.Strings(removed)
	if len(shared) == 0 {
		return fmt.Errorf("snapshots share no benchmarks")
	}
	var regressions []string
	for _, name := range shared {
		o, n := oldRes[name], newRes[name]
		dns := delta(o.NsPerOp, n.NsPerOp)
		dal := delta(o.AllocsOp, n.AllocsOp)
		mark := "  "
		if dns > threshold || dal > threshold {
			mark = "! "
			regressions = append(regressions, name)
		}
		fmt.Fprintf(w, "%s%-40s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs/op %8.0f -> %8.0f (%+6.1f%%)\n",
			mark, name, o.NsPerOp, n.NsPerOp, 100*dns, o.AllocsOp, n.AllocsOp, 100*dal)
	}
	for _, name := range added {
		n := newRes[name]
		fmt.Fprintf(w, "+ %-40s ns/op %12s -> %12.0f            allocs/op %8s -> %8.0f          (added)\n",
			name, "-", n.NsPerOp, "-", n.AllocsOp)
	}
	for _, name := range removed {
		o := oldRes[name]
		fmt.Fprintf(w, "- %-40s ns/op %12.0f -> %12s            allocs/op %8.0f -> %8s          (removed)\n",
			name, o.NsPerOp, "-", o.AllocsOp, "-")
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %s",
			len(regressions), 100*threshold, strings.Join(regressions, ", "))
	}
	fmt.Fprintf(w, "OK: %d benchmarks within %.0f%% of baseline (%d added, %d removed)\n",
		len(shared), 100*threshold, len(added), len(removed))
	return nil
}

// delta returns the fractional increase from old to new; a zero or
// missing baseline never counts as a regression.
func delta(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return (new - old) / old
}
