// Command benchdiff guards against performance regressions.
//
// It has two modes. Parse mode reads `go test -bench -benchmem`
// output (stdin or -in) and writes a JSON snapshot of every benchmark
// (name, ns/op, allocs/op, B/op):
//
//	go test -bench=. -benchmem ./... | benchdiff -parse -out BENCH_2026-08-06.json
//
// Compare mode diffs two snapshots and exits non-zero when any
// benchmark present in both regressed beyond its threshold on a gated
// metric. All three metrics — ns/op, allocs/op, B/op — are gated by
// default at -threshold (20%); -threshold-allocs and -threshold-bytes
// override the allocation gates independently (time is often noisy
// where allocation counts are exact, so the alloc gates can be much
// tighter), and -metric restricts which metrics are gated at all:
//
//	benchdiff -old BENCH_2026-08-01.json -new BENCH_2026-08-06.json
//	benchdiff -old old.json -new new.json -threshold-allocs 0 -threshold-bytes 0.05
//	benchdiff -old old.json -new new.json -metric ns
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"ecavs/internal/benchfmt"
)

// Result is one benchmark's snapshot entry — the shared interchange
// schema in internal/benchfmt, which cmd/loadgen also emits.
type Result = benchfmt.Result

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	parse := fs.Bool("parse", false, "parse `go test -bench` output into a JSON snapshot")
	in := fs.String("in", "", "bench output to parse (default stdin)")
	out := fs.String("out", "", "snapshot file to write (default stdout)")
	oldPath := fs.String("old", "", "baseline snapshot (compare mode)")
	newPath := fs.String("new", "", "candidate snapshot (compare mode)")
	threshold := fs.Float64("threshold", 0.20, "max allowed fractional regression on any gated metric")
	thresholdAllocs := fs.Float64("threshold-allocs", -1, "allocs/op threshold override (negative inherits -threshold)")
	thresholdBytes := fs.Float64("threshold-bytes", -1, "B/op threshold override (negative inherits -threshold)")
	metric := fs.String("metric", "ns,allocs,bytes", "comma-separated metrics to gate: ns, allocs, bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *parse {
		r := stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		results, err := parseBench(r)
		if err != nil {
			return err
		}
		if len(results) == 0 {
			return fmt.Errorf("no benchmark lines found")
		}
		if *out != "" {
			return benchfmt.WriteFile(*out, results)
		}
		data, err := benchfmt.Marshal(results)
		if err != nil {
			return err
		}
		_, err = stdout.Write(data)
		return err
	}

	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("need either -parse, or both -old and -new")
	}
	gates, err := parseGates(*metric, *threshold, *thresholdAllocs, *thresholdBytes)
	if err != nil {
		return err
	}
	oldRes, err := loadSnapshot(*oldPath)
	if err != nil {
		return err
	}
	newRes, err := loadSnapshot(*newPath)
	if err != nil {
		return err
	}
	return compare(stdout, oldRes, newRes, gates)
}

// metricGate is one gated metric: its display name, the maximum
// fractional regression it tolerates, and how to read it off a Result.
type metricGate struct {
	name      string
	threshold float64
	value     func(Result) float64
}

// parseGates resolves the -metric selection and the per-metric
// thresholds into the list of gates compare enforces. Negative
// overrides inherit the base threshold; duplicate selections collapse;
// an unknown metric name or an empty selection is an error.
func parseGates(metrics string, base, allocs, bytes float64) ([]metricGate, error) {
	if allocs < 0 {
		allocs = base
	}
	if bytes < 0 {
		bytes = base
	}
	known := map[string]metricGate{
		"ns":     {name: "ns/op", threshold: base, value: func(r Result) float64 { return r.NsPerOp }},
		"allocs": {name: "allocs/op", threshold: allocs, value: func(r Result) float64 { return r.AllocsOp }},
		"bytes":  {name: "B/op", threshold: bytes, value: func(r Result) float64 { return r.BytesOp }},
	}
	var gates []metricGate
	seen := make(map[string]bool, 3)
	for _, tok := range strings.Split(metrics, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" || seen[tok] {
			continue
		}
		g, ok := known[tok]
		if !ok {
			return nil, fmt.Errorf("unknown metric %q (want ns, allocs, or bytes)", tok)
		}
		seen[tok] = true
		gates = append(gates, g)
	}
	if len(gates) == 0 {
		return nil, fmt.Errorf("-metric selects no metrics")
	}
	return gates, nil
}

// parseBench extracts benchmark results from `go test -bench` output.
// Lines look like:
//
//	BenchmarkOptimalPlanner-8  2276  519957 ns/op  8640 B/op  11 allocs/op
func parseBench(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		res := Result{Name: trimProcSuffix(fields[0])}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "allocs/op":
				res.AllocsOp = v
			case "B/op":
				res.BytesOp = v
			}
		}
		if ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

// trimProcSuffix strips the -<GOMAXPROCS> suffix so snapshots taken on
// machines with different core counts stay comparable by name.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func loadSnapshot(path string) (map[string]Result, error) {
	list, err := benchfmt.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return benchfmt.Map(list), nil
}

// compare prints a per-benchmark delta table — including benchmarks
// present in only one snapshot, reported as added or removed — and
// returns an error when any shared benchmark regressed beyond a gate's
// threshold on that gate's metric. All three metrics are always
// printed; only the selected gates can fail the run. Added and removed
// benchmarks never fail the comparison (new benchmarks have no
// baseline; deletions are deliberate), but they are printed so a
// silently vanished benchmark cannot masquerade as a clean run.
func compare(w io.Writer, oldRes, newRes map[string]Result, gates []metricGate) error {
	var shared, added, removed []string
	for name := range newRes {
		if _, ok := oldRes[name]; ok {
			shared = append(shared, name)
		} else {
			added = append(added, name)
		}
	}
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(shared)
	sort.Strings(added)
	sort.Strings(removed)
	if len(shared) == 0 {
		return fmt.Errorf("snapshots share no benchmarks")
	}
	var regressions []string
	for _, name := range shared {
		o, n := oldRes[name], newRes[name]
		var failed []string
		for _, g := range gates {
			if d := delta(g.value(o), g.value(n)); d > g.threshold {
				failed = append(failed, fmt.Sprintf("%s %+.1f%% > %.0f%%", g.name, 100*d, 100*g.threshold))
			}
		}
		mark := "  "
		if len(failed) > 0 {
			mark = "! "
			regressions = append(regressions, fmt.Sprintf("%s (%s)", name, strings.Join(failed, "; ")))
		}
		fmt.Fprintf(w, "%s%-40s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs/op %8.0f -> %8.0f (%+6.1f%%)  B/op %10.0f -> %10.0f (%+6.1f%%)\n",
			mark, name,
			o.NsPerOp, n.NsPerOp, 100*delta(o.NsPerOp, n.NsPerOp),
			o.AllocsOp, n.AllocsOp, 100*delta(o.AllocsOp, n.AllocsOp),
			o.BytesOp, n.BytesOp, 100*delta(o.BytesOp, n.BytesOp))
	}
	for _, name := range added {
		n := newRes[name]
		fmt.Fprintf(w, "+ %-40s ns/op %12s -> %12.0f            allocs/op %8s -> %8.0f            B/op %10s -> %10.0f          (added)\n",
			name, "-", n.NsPerOp, "-", n.AllocsOp, "-", n.BytesOp)
	}
	for _, name := range removed {
		o := oldRes[name]
		fmt.Fprintf(w, "- %-40s ns/op %12.0f -> %12s            allocs/op %8.0f -> %8s            B/op %10.0f -> %10s          (removed)\n",
			name, o.NsPerOp, "-", o.AllocsOp, "-", o.BytesOp, "-")
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed: %s",
			len(regressions), strings.Join(regressions, ", "))
	}
	gateNames := make([]string, len(gates))
	for i, g := range gates {
		gateNames[i] = fmt.Sprintf("%s ≤ +%.0f%%", g.name, 100*g.threshold)
	}
	fmt.Fprintf(w, "OK: %d benchmarks within baseline (%s; %d added, %d removed)\n",
		len(shared), strings.Join(gateNames, ", "), len(added), len(removed))
	return nil
}

// delta returns the fractional increase from old to new; a zero or
// missing baseline never counts as a regression.
func delta(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return (new - old) / old
}
