package main

import (
	"path/filepath"
	"testing"

	"ecavs/internal/trace"
)

func TestRunWritesTraces(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir}); err != nil {
		t.Fatal(err)
	}
	// All five traces load back.
	for id := 1; id <= 5; id++ {
		tr, err := trace.Load(dir, id)
		if err != nil {
			t.Fatalf("load trace %d: %v", id, err)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("trace %d invalid after round trip: %v", id, err)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunUnwritableDir(t *testing.T) {
	// A path under a file cannot be created.
	dir := t.TempDir()
	blocked := filepath.Join(dir, "file")
	if err := run([]string{"-out", blocked}); err != nil {
		t.Skipf("first write failed unexpectedly: %v", err)
	}
	// Now /file exists as a directory; nest under one of its files.
	if err := run([]string{"-out", filepath.Join(blocked, "trace1_meta.json", "sub")}); err == nil {
		t.Error("nesting under a file accepted")
	}
}
