// Command tracegen synthesises the five Table V evaluation traces and
// writes them to disk as CSV + JSON files that trace.Load can read
// back.
//
// Usage:
//
//	tracegen -out ./traces
package main

import (
	"flag"
	"fmt"
	"os"

	"ecavs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	out := fs.String("out", "traces", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	traces, err := ecavs.GenerateTableVTraces()
	if err != nil {
		return err
	}
	for _, tr := range traces {
		if err := tr.Save(*out); err != nil {
			return fmt.Errorf("trace %d: %w", tr.ID, err)
		}
		fmt.Printf("trace%d (%s): %.0f s, %.1f MB, vibration %.2f, %d network points, %d accel samples\n",
			tr.ID, tr.Name, tr.LengthSec, tr.DataSizeMB(), tr.AvgVibration(),
			len(tr.Network), len(tr.Accel))
	}
	fmt.Printf("wrote %d traces to %s\n", len(traces), *out)
	return nil
}
