// Command classify reads an accelerometer CSV (the format tracegen
// writes: time_sec,x,y,z) and prints the viewing context over time:
// the Eq. 5 vibration level and the inferred context class per window.
//
// Usage:
//
//	classify -in traces/trace1_accel.csv
//	classify -demo            # classify a synthetic bus ride instead
package main

import (
	"flag"
	"fmt"
	"os"

	"ecavs/internal/trace"
	"ecavs/internal/vibration"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	in := fs.String("in", "", "accelerometer CSV (time_sec,x,y,z)")
	demo := fs.Bool("demo", false, "classify a synthetic bus ride instead of a file")
	window := fs.Float64("window", vibration.DefaultWindowSec, "analysis window in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var samples []vibration.Sample
	switch {
	case *demo:
		gen, err := vibration.NewGenerator(vibration.DefaultSampleRateHz, 1)
		if err != nil {
			return err
		}
		samples = gen.GenerateSchedule(func(t float64) vibration.Profile {
			switch {
			case t < 20:
				return vibration.QuietRoom
			case t < 60:
				return vibration.Bus
			case t < 80:
				return vibration.Cafe
			default:
				return vibration.Car
			}
		}, 0, 100)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		samples, err = trace.DecodeAccelCSV(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in <csv> or -demo")
	}
	if len(samples) == 0 {
		return fmt.Errorf("no samples")
	}

	classifier, err := vibration.NewClassifier(*window)
	if err != nil {
		return err
	}
	fmt.Printf("%8s  %10s  %8s  %6s  %s\n", "time", "vibration", "dom freq", "peak", "context")
	nextReport := samples[0].TimeSec + *window
	for _, s := range samples {
		classifier.Push(s)
		if s.TimeSec < nextReport {
			continue
		}
		nextReport += *window
		features, err := classifier.Features()
		if err != nil {
			continue
		}
		fmt.Printf("%7.1fs  %7.2f m/s²  %5.2f Hz  %5.2f  %s\n",
			s.TimeSec, features.RMS, features.DominantFreqHz, features.PeakRatio,
			vibration.Classify(features))
	}
	return nil
}
