package main

import (
	"os"
	"path/filepath"
	"testing"

	"ecavs/internal/trace"
	"ecavs/internal/vibration"
)

func TestRunDemo(t *testing.T) {
	if err := run([]string{"-demo"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromCSV(t *testing.T) {
	gen, err := vibration.NewGenerator(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(vibration.Bus, 0, 20)
	path := filepath.Join(t.TempDir(), "accel.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeAccelCSV(f, samples); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing input accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file.csv"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-demo", "-window", "-1"}); err == nil {
		t.Error("negative window accepted")
	}
}
