// Fairshare: three players compete for one 12 Mbps bottleneck — the
// multi-client setting FESTIVE was built for. The co-simulator splits
// capacity processor-sharing style and reports each player's bitrate
// trajectory, the Jain fairness index, and how much each policy
// oscillates under contention.
package main

import (
	"fmt"
	"log"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/multisim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	policies := []struct {
		name string
		make func() (abr.Algorithm, error)
	}{
		{name: "FESTIVE", make: func() (abr.Algorithm, error) { return abr.NewFESTIVE(), nil }},
		{name: "BBA", make: func() (abr.Algorithm, error) { return abr.NewBBA() }},
	}
	for _, p := range policies {
		clients := make([]multisim.Client, 3)
		for i := range clients {
			video := dash.Video{
				Title:        fmt.Sprintf("viewer-%d", i),
				SpatialInfo:  45,
				TemporalInfo: 15,
				DurationSec:  120,
			}
			man, err := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{Seed: int64(i)})
			if err != nil {
				return err
			}
			alg, err := p.make()
			if err != nil {
				return err
			}
			clients[i] = multisim.Client{
				Name:           fmt.Sprintf("viewer-%d", i),
				Manifest:       man,
				Algorithm:      alg,
				StartOffsetSec: float64(i) * 8, // staggered arrivals
			}
		}
		res, err := multisim.Run(multisim.Config{Clients: clients, CapacityMbps: 12})
		if err != nil {
			return err
		}
		fmt.Printf("== %s on a shared 12 Mbps link (fair share 4 Mbps each)\n", p.name)
		for _, c := range res.Clients {
			fmt.Printf("  %-9s mean %.2f Mbps  %2d switches  %.1f s stalled  (%d segments)\n",
				c.Name, c.MeanBitrateMbps, c.Switches, c.RebufferSec, len(c.Rungs))
		}
		fmt.Printf("  Jain fairness: %.3f\n\n", res.JainFairness)
	}
	fmt.Println("Buffer-based policies oscillate under contention; throughput-damped")
	fmt.Println("policies hold steady — FESTIVE's design argument, reproduced.")
	return nil
}
