// Trainagent: train the tabular Q-learning bitrate controller on
// synthetic channels, persist the learned policy to disk, load it back
// as a frozen agent, and replay it on a Table V trace — the full
// train / ship / deploy loop of a learned ABR.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ecavs"
	"ecavs/internal/dash"
	"ecavs/internal/learn"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ladder := dash.EvalLadder()

	// 1. Train on randomised synthetic channels.
	cfg := learn.DefaultTrainConfig(ladder)
	fmt.Printf("training: %d episodes x %.0f s over %d-rung ladder...\n",
		cfg.Episodes, cfg.EpisodeSec, len(ladder))
	agent, err := learn.Train(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trained: %.1f%% of the state space visited\n\n",
		agent.Table().CoverageFraction()*100)

	// 2. Persist the policy.
	path := filepath.Join(os.TempDir(), "qtable.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := agent.Table().Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("policy saved to %s (%d bytes)\n", path, info.Size())

	// 3. Load it back as a frozen agent.
	rf, err := os.Open(path)
	if err != nil {
		return err
	}
	defer rf.Close()
	table, err := learn.LoadTable(rf)
	if err != nil {
		return err
	}
	frozen, err := learn.NewFrozenAgent(table, 1)
	if err != nil {
		return err
	}

	// 4. Deploy on a recorded trace.
	traces, err := ecavs.GenerateTableVTraces()
	if err != nil {
		return err
	}
	tr := traces[1] // the train ride: good coverage, low vibration
	man, err := sim.ManifestForTrace(tr, ladder)
	if err != nil {
		return err
	}
	m, err := sim.RunOnTrace(tr, man, frozen, power.EvalModel(), qoe.Default(), 30)
	if err != nil {
		return err
	}
	fmt.Printf("\ndeployed on trace %d (%s):\n", tr.ID, tr.Name)
	fmt.Printf("  energy %.1f J, QoE %.3f, mean bitrate %.2f Mbps, %d switches, %.1f s stalled\n",
		m.TotalJ(), m.MeanQoE, m.MeanBitrateMbps, m.Switches, m.RebufferSec)
	return nil
}
