// Alphasweep: trace the energy/QoE Pareto front of the paper's
// weighted-sum objective (Eq. 11) by sweeping the energy weight alpha
// over the five evaluation traces. Useful for picking an operating
// point other than the paper's alpha = 0.5.
package main

import (
	"fmt"
	"log"

	"ecavs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	traces, err := ecavs.GenerateTableVTraces()
	if err != nil {
		return err
	}

	// YouTube reference per trace.
	ytEnergy := make([]float64, len(traces))
	ytQoE := make([]float64, len(traces))
	for i, tr := range traces {
		m, err := ecavs.Stream(tr, ecavs.NewYoutube())
		if err != nil {
			return err
		}
		ytEnergy[i] = m.TotalJ()
		ytQoE[i] = m.MeanQoE
	}

	fmt.Println("alpha   energy saving   QoE degradation   (averaged over the 5 Table V traces)")
	for _, alpha := range []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		var save, degr float64
		for i, tr := range traces {
			alg, err := ecavs.NewOnline(alpha)
			if err != nil {
				return err
			}
			m, err := ecavs.Stream(tr, alg)
			if err != nil {
				return err
			}
			save += 1 - m.TotalJ()/ytEnergy[i]
			degr += 1 - m.MeanQoE/ytQoE[i]
		}
		n := float64(len(traces))
		marker := ""
		if alpha == ecavs.DefaultAlpha {
			marker = "   <- paper's setting"
		}
		fmt.Printf("%4.1f    %6.1f%%         %6.1f%%%s\n", alpha, 100*save/n, 100*degr/n, marker)
	}
	fmt.Println("\nsmaller alpha favours QoE; larger alpha favours battery life")
	return nil
}
