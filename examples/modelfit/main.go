// Modelfit: reproduce the paper's modeling pipeline (Section III-B,
// Table III) — run a synthetic twenty-subject quality-assessment study,
// then recover the rate-quality curve by Gauss-Newton least squares and
// the vibration-impairment surface by bilinear least squares.
package main

import (
	"fmt"
	"log"

	"ecavs/internal/dash"
	"ecavs/internal/fit"
	"ecavs/internal/qoe"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	truth := qoe.Default()
	const subjects = 20
	ladder := dash.TableIILadder()
	vibrations := []float64{0, 1, 2, 3, 4, 5, 6}

	// Phase 1: every subject rates every (bitrate, vibration) cell on
	// the nine-grade ITU-T P.910 scale.
	type cellKey struct{ r, v float64 }
	ratings := make(map[cellKey][]float64)
	for s := 0; s < subjects; s++ {
		rater := qoe.NewRater(truth, 0.5, int64(500+s))
		for _, rep := range ladder {
			for _, v := range vibrations {
				k := cellKey{r: rep.BitrateMbps, v: v}
				ratings[k] = append(ratings[k], qoe.Scale9To5(rater.Rate(rep.BitrateMbps, v)))
			}
		}
	}
	mean := func(xs []float64) float64 {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}

	// Phase 2: fit the quiet-room rate-quality curve (Fig. 2b).
	var rs, qs []float64
	for _, rep := range ladder {
		for _, q := range ratings[cellKey{r: rep.BitrateMbps, v: 0}] {
			rs = append(rs, rep.BitrateMbps)
			qs = append(qs, q)
		}
	}
	curve, err := fit.GaussNewton(fit.RateQualityModel{}, rs, qs, []float64{1, 1}, fit.GaussNewtonOptions{})
	if err != nil {
		return fmt.Errorf("curve fit: %w", err)
	}
	fmt.Println("rate-quality curve Q0(r) = 1 + 4/(1 + (c2/r)^c1):")
	fmt.Printf("  fitted  c1=%.4f c2=%.4f\n", curve[0], curve[1])
	fmt.Printf("  truth   c1=%.4f c2=%.4f\n\n", truth.C1, truth.C2)

	// Phase 3: fit the impairment surface (Fig. 2c) from the rating
	// difference between the quiet room and each vibrating context.
	var xr, xv, xi []float64
	for _, rep := range ladder {
		quiet := mean(ratings[cellKey{r: rep.BitrateMbps, v: 0}])
		for _, v := range vibrations[1:] {
			xr = append(xr, rep.BitrateMbps)
			xv = append(xv, v)
			xi = append(xi, quiet-mean(ratings[cellKey{r: rep.BitrateMbps, v: v}]))
		}
	}
	surface, err := fit.FitBilinear(xr, xv, xi)
	if err != nil {
		return fmt.Errorf("surface fit: %w", err)
	}
	fmt.Println("vibration impairment I(r, v) (bilinear surface):")
	fmt.Printf("  fitted  %s\n", surface.String())
	fmt.Printf("  truth   p00=%.6f p10=%.6f p01=%.6f p11=%.6f\n\n", truth.P00, truth.P10, truth.P01, truth.P11)

	fmt.Println("paper anchor check (Fig. 2c prose):")
	for _, a := range []struct{ r, v, want float64 }{
		{r: 1.5, v: 2, want: 0.049},
		{r: 1.5, v: 6, want: 0.184},
		{r: 5.8, v: 2, want: 0.174},
		{r: 5.8, v: 6, want: 0.549},
	} {
		fmt.Printf("  I(%.1f, %.0f): fitted %.3f, paper %.3f\n", a.r, a.v, surface.Eval(a.r, a.v), a.want)
	}
	return nil
}
