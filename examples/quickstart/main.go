// Quickstart: stream one recorded bus-ride trace with the paper's
// energy-aware, context-aware online algorithm and compare it against
// fixed-1080p streaming.
package main

import (
	"fmt"
	"log"

	"ecavs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The five Table V evaluation traces: network conditions, signal
	// strength, and accelerometer streams of real-world-like viewing
	// sessions. Trace 1 is a short bus ride: heavy vibration, weak LTE.
	traces, err := ecavs.GenerateTableVTraces()
	if err != nil {
		return err
	}
	bus := traces[0]
	fmt.Printf("session: %s — %.0f s video, avg vibration %.2f m/s², avg signal %.1f dBm\n\n",
		bus.Name, bus.LengthSec, bus.AvgVibration(), bus.AvgSignalDBm())

	// The paper's online algorithm balances energy against QoE with
	// weight alpha (0.5 = the paper's evaluation setting).
	ours, err := ecavs.NewOnline(ecavs.DefaultAlpha)
	if err != nil {
		return err
	}
	youtube := ecavs.NewYoutube() // fixed 5.8 Mbps / 1080p baseline

	for _, alg := range []ecavs.Algorithm{youtube, ours} {
		m, err := ecavs.Stream(bus, alg)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s energy %6.1f J   QoE %.3f   mean bitrate %.2f Mbps   stalls %.1f s\n",
			m.Algorithm, m.TotalJ(), m.MeanQoE, m.MeanBitrateMbps, m.RebufferSec)
	}

	fmt.Println("\nThe online algorithm senses the bus's vibration and the weak signal,")
	fmt.Println("drops to a bitrate the context can actually appreciate, and saves a")
	fmt.Println("large share of the radio energy.")
	return nil
}
