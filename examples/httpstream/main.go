// Httpstream: serve a DASH presentation (MPD manifest + synthetic
// segments) over a real local HTTP server, then stream it back with an
// adaptive client driving FESTIVE — the whole loop over an actual TCP
// stack instead of the discrete-event simulator. The server's
// token-bucket shaping emulates a mid-session network dip, and the log
// shows the adaptation reacting to it.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/httpdash"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A one-minute clip over the Table II ladder.
	video, err := dash.VideoByTitle("BBB")
	if err != nil {
		return err
	}
	video.DurationSec = 60
	manifest, err := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{Seed: 42})
	if err != nil {
		return err
	}

	// Serve it, shaped to ~3 MB/s (24 Mbps) like decent LTE.
	server, err := httpdash.NewServer(manifest, httpdash.WithRateLimitMBps(3))
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: server}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	}()
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving %s (%d segments, 6 rungs) at %s\n",
		video.Title, manifest.SegmentCount(), base)

	// Mid-session dip: after a short delay, throttle hard, then recover.
	go func() {
		time.Sleep(400 * time.Millisecond)
		fmt.Println(">>> network dips to 0.3 MB/s")
		server.SetRateLimitMBps(0.3)
		time.Sleep(900 * time.Millisecond)
		fmt.Println(">>> network recovers to 3 MB/s")
		server.SetRateLimitMBps(3)
	}()

	client, err := httpdash.NewClient(base, abr.NewFESTIVE(), httpdash.WithBufferThreshold(10))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	stats, err := client.Stream(ctx)
	if err != nil {
		return err
	}

	fmt.Println("\nper-segment adaptation:")
	for _, f := range stats.Fetches {
		fmt.Printf("  seg %02d  rung %d (%.2f Mbps)  %7d bytes in %6.1f ms  -> %7.1f Mbps measured\n",
			f.Segment, f.Rung, f.BitrateMbps, f.Bytes,
			float64(f.WallTime.Microseconds())/1000, f.ThroughputMbps)
	}
	fmt.Printf("\nsession: %.2f MB total, mean bitrate %.2f Mbps, %d switches, %.2f s stalled\n",
		float64(stats.TotalBytes)/1e6, stats.MeanBitrateMbps, stats.Switches, stats.StallSec)
	return nil
}
