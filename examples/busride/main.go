// Busride: build a custom commute from scratch — a bus ride with stops
// at quiet stations and a weak-coverage tunnel — using the sensor and
// channel substrates directly, then watch the context-aware algorithm
// react segment by segment.
//
// This example goes below the facade: it composes internal/vibration,
// internal/netsim, internal/dash, internal/core, and internal/sim the
// way a downstream experimenter would when studying a new context.
package main

import (
	"fmt"
	"log"
	"math"

	"ecavs/internal/core"
	"ecavs/internal/dash"
	"ecavs/internal/netsim"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
	"ecavs/internal/vibration"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// ridePhase returns the context profile and mean signal strength at a
// given moment of the 10-minute commute.
func ridePhase(t float64) (vibration.Profile, float64) {
	switch {
	case t < 60: // waiting at the stop
		return vibration.QuietRoom, -92
	case t < 240: // rolling through the city
		return vibration.Bus, -104
	case t < 300: // station stop
		return vibration.Cafe, -95
	case t < 420: // the tunnel: shaking and nearly no coverage
		return vibration.Bus, -113
	default: // suburbs: smoother roads, decent coverage
		return vibration.Car, -100
	}
}

func run() error {
	const rideSec = 600.0
	pm := power.EvalModel()
	qm := qoe.Default()

	// Synthesize the accelerometer stream for the whole ride.
	gen, err := vibration.NewGenerator(vibration.DefaultSampleRateHz, 2024)
	if err != nil {
		return err
	}
	accel := gen.GenerateSchedule(func(t float64) vibration.Profile {
		p, _ := ridePhase(t)
		return p
	}, 0, rideSec)

	// The online vibration estimator the algorithm reads (Section IV-B).
	est, err := vibration.NewEstimator(vibration.DefaultWindowSec)
	if err != nil {
		return err
	}
	cursor := 0
	vibAt := func(t float64) float64 {
		for cursor < len(accel) && accel[cursor].TimeSec <= t {
			est.Push(accel[cursor])
			cursor++
		}
		return est.Level()
	}

	// A channel whose mean signal follows the ride's phases, capped
	// like a congested cell edge.
	capacity := func(dBm float64) float64 {
		nominal := pm.NominalThroughputMBps(dBm)
		cell := 40.0 / 8 * math.Pow(10, (dBm+90)/25)
		if cell < nominal {
			return cell
		}
		return nominal
	}
	link, err := netsim.NewChannel(netsim.SignalConfig{
		MeanDBm: -100,
		MeanAt: func(t float64) float64 {
			_, s := ridePhase(t)
			return s
		},
		ReversionRate: 0.3,
		VolatilityDB:  2.5,
	}, netsim.FadingConfig{}, capacity, 2024)
	if err != nil {
		return err
	}

	// A 10-minute episode of the "Show" catalog title.
	video, err := dash.VideoByTitle("Show")
	if err != nil {
		return err
	}
	video.DurationSec = rideSec
	manifest, err := dash.NewManifest(video, dash.EvalLadder(), dash.ManifestConfig{Seed: 7})
	if err != nil {
		return err
	}

	obj, err := core.NewObjective(core.DefaultAlpha, pm, qm)
	if err != nil {
		return err
	}
	metrics, err := sim.Run(sim.Config{
		Manifest:    manifest,
		Link:        link,
		VibrationAt: vibAt,
		Algorithm:   core.NewOnline(obj),
		Power:       pm,
		QoE:         qm,
	})
	if err != nil {
		return err
	}

	fmt.Println("phase-by-phase bitrate selection (energy-aware, context-aware):")
	phases := []struct {
		name     string
		from, to float64
	}{
		{name: "waiting at stop", from: 0, to: 60},
		{name: "city ride", from: 60, to: 240},
		{name: "station stop", from: 240, to: 300},
		{name: "tunnel", from: 300, to: 420},
		{name: "suburbs", from: 420, to: rideSec},
	}
	for _, ph := range phases {
		var br, vib, n float64
		for _, s := range metrics.Segments {
			if s.StartSec >= ph.from && s.StartSec < ph.to {
				br += s.BitrateMbps
				vib += s.Vibration
				n++
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("  %-16s avg vibration %4.2f  ->  avg bitrate %4.2f Mbps\n",
			ph.name, vib/n, br/n)
	}
	fmt.Printf("\nsession: %.1f J total, QoE %.3f, %d switches, %.1f s stalled\n",
		metrics.TotalJ(), metrics.MeanQoE, metrics.Switches, metrics.RebufferSec)
	return nil
}
